#include "broker/broker.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace tasklets::broker {

namespace {
constexpr std::string_view kLog = "broker";
}  // namespace

void Broker::trace_instant(const TaskletState& state, std::string name,
                           TaskletId id, SimTime now,
                           std::vector<std::pair<std::string, std::string>> args) {
  if (config_.trace == nullptr || !state.trace.active()) return;
  config_.trace->instant(state.trace, std::move(name), this->id(), id, now,
                         std::move(args));
}

void Broker::end_attempt_span(const TaskletState& state, TaskletId id,
                              const AttemptState& attempt, SimTime now,
                              std::string_view status) {
  if (config_.trace == nullptr || !state.trace.active()) return;
  // span 0 means already closed (close_open_spans at conclusion) — a late
  // result for it must not emit the span twice.
  if (attempt.span == 0) return;
  Span span;
  span.trace_id = state.trace.trace_id;
  span.span_id = attempt.span;
  span.parent_span = state.trace.parent_span;
  span.name = "attempt";
  span.node = this->id();
  span.tasklet = id;
  span.start = attempt.issued_at;
  span.end = now;
  span.args.emplace_back("provider", attempt.provider.to_string());
  span.args.emplace_back("status", std::string(status));
  config_.trace->add(std::move(span));
}

void Broker::close_open_spans(TaskletState& state, TaskletId id, SimTime now) {
  if (config_.trace == nullptr || !state.trace.active()) return;
  // A tasklet can conclude while attempts are still outstanding (fences,
  // cancels, speculative losers, results that never arrive). Close their
  // spans as "abandoned" so phase attribution sees that wall time instead of
  // undercounting it; zeroing the stored span id keeps a late result from
  // emitting the span twice.
  for (auto& [attempt_id, attempt] : state.attempts) {
    if (attempt.span == 0) continue;
    end_attempt_span(state, id, attempt, now, "abandoned");
    attempt.span = 0;
  }
  if (state.attempts_total == 0) {
    // Never placed (admission reject, unschedulable, failed program fetch,
    // memo hit): the queue span from try_place_replica never happened, so
    // account the queue wait here, submission to conclusion.
    Span queue_span;
    queue_span.trace_id = state.trace.trace_id;
    queue_span.parent_span = state.trace.parent_span;
    queue_span.name = "queue";
    queue_span.node = this->id();
    queue_span.tasklet = id;
    queue_span.start = state.submitted_at;
    queue_span.end = now;
    config_.trace->add(std::move(queue_span));
  }
}

Broker::Broker(NodeId id, std::unique_ptr<Scheduler> scheduler, BrokerConfig config)
    : Actor(id),
      scheduler_(std::move(scheduler)),
      config_(config),
      rng_(config.rng_seed),
      blobs_(config.blob_budget_bytes),
      memo_(config.memo_entries) {}

void Broker::on_start(SimTime, proto::Outbox& out) {
  out.arm_timer(kScanTimer, config_.scan_interval);
}

std::size_t Broker::provider_count() const noexcept { return providers_.size(); }

std::size_t Broker::online_provider_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [id, p] : providers_) {
    if (p.online) ++n;
  }
  return n;
}

std::vector<std::pair<NodeId, std::uint64_t>> Broker::provider_completions() const {
  std::vector<std::pair<NodeId, std::uint64_t>> out;
  out.reserve(providers_.size());
  for (const auto& [id, p] : providers_) {
    out.emplace_back(id, p.view.completed);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ProviderView> Broker::provider_views() const {
  std::vector<ProviderView> views;
  views.reserve(providers_.size());
  for (const auto& [id, p] : providers_) {
    if (!p.online) continue;
    ProviderView view = p.view;
    view.busy_slots = static_cast<std::uint32_t>(p.inflight.size());
    views.push_back(std::move(view));
  }
  std::sort(views.begin(), views.end(),
            [](const ProviderView& a, const ProviderView& b) {
              return a.id < b.id;
            });
  return views;
}

PoolStats Broker::pool_stats() const {
  return compute_pool_stats(provider_views());
}

void Broker::refresh_pool_signals() {
  const PoolStats pool = pool_stats();
  pool_heterogeneity_ = pool.heterogeneity;
  if (!metrics::enabled()) return;
  auto& registry = metrics::MetricsRegistry::instance();
  registry.gauge("broker.pool.heterogeneity")
      .set(static_cast<std::int64_t>(pool.heterogeneity * 1e6));
  registry.gauge("broker.pool.online")
      .set(static_cast<std::int64_t>(pool.providers));
  registry.gauge("broker.pool.confident")
      .set(static_cast<std::int64_t>(pool.confident));
  registry.gauge("broker.pool.mean_speed")
      .set(static_cast<std::int64_t>(pool.mean_speed));
  for (const auto& [id, p] : providers_) {
    if (!p.online) continue;
    // Per-provider health gauge (dynamic name, so no macro cache).
    registry.gauge("broker.health." + id.to_string())
        .set(static_cast<std::int64_t>(health_score(p.view) * 1e6));
  }
}

double Broker::measured_speed(NodeId provider) const noexcept {
  const auto it = providers_.find(provider);
  return it != providers_.end() ? it->second.speed.estimate() : 0.0;
}

std::uint64_t Broker::speed_samples(NodeId provider) const noexcept {
  const auto it = providers_.find(provider);
  return it != providers_.end() ? it->second.speed.samples() : 0;
}

void Broker::record_speed_sample(NodeId provider, std::uint64_t fuel,
                                 SimTime elapsed) {
  const auto it = providers_.find(provider);
  if (it == providers_.end()) return;
  ProviderState& p = it->second;
  p.speed.record(static_cast<double>(fuel), to_seconds(elapsed));
  completions_.record(elapsed);
  // Publish into the policy-visible view only once confident — until then
  // ProviderView::effective_speed() keeps returning the advertised score.
  p.view.speed_samples = p.speed.samples();
  p.view.measured_speed_fuel_per_sec =
      p.speed.confident() ? p.speed.estimate() : 0.0;
  if (metrics::enabled()) {
    // Per-provider estimator gauge; reference bound once (see
    // issue_attempt's assigned counter for the rationale).
    if (p.speed_gauge == nullptr) {
      p.speed_gauge = &metrics::MetricsRegistry::instance().gauge(
          "broker.speed." + provider.to_string());
    }
    p.speed_gauge->set(static_cast<std::int64_t>(p.speed.estimate()));
  }
}

void Broker::on_batch_begin(SimTime) {
  batching_ = true;
  need_drain_ = false;
  batch_messages_ = 0;
}

void Broker::on_batch_end(SimTime now, proto::Outbox& out) {
  batching_ = false;
  TASKLETS_OBSERVE("broker.batch.size", static_cast<double>(batch_messages_));
  batch_messages_ = 0;
  if (need_drain_) {
    need_drain_ = false;
    drain_queue(now, out);
  }
}

void Broker::request_drain(SimTime now, proto::Outbox& out) {
  // Inside a runtime-delivered burst the drain is deferred to on_batch_end:
  // one placement pass serves the whole burst instead of one pass per
  // register/heartbeat/result message.
  if (batching_) {
    need_drain_ = true;
    return;
  }
  drain_queue(now, out);
}

void Broker::on_message(const proto::Envelope& envelope, SimTime now,
                        proto::Outbox& out) {
  if (batching_) ++batch_messages_;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, proto::RegisterProvider>) {
          handle_register(envelope.from, m, now, out);
        } else if constexpr (std::is_same_v<T, proto::DeregisterProvider>) {
          handle_deregister(envelope.from, m, now, out);
        } else if constexpr (std::is_same_v<T, proto::Heartbeat>) {
          handle_heartbeat(envelope.from, m, now, out);
        } else if constexpr (std::is_same_v<T, proto::SubmitTasklet>) {
          handle_submit(envelope.from, m, now, out);
        } else if constexpr (std::is_same_v<T, proto::CancelTasklet>) {
          handle_cancel(m, now);
        } else if constexpr (std::is_same_v<T, proto::AttemptResult>) {
          handle_attempt_result(envelope.from, m, now, out);
        } else if constexpr (std::is_same_v<T, proto::FetchProgram>) {
          handle_fetch_program(envelope.from, m, out);
        } else if constexpr (std::is_same_v<T, proto::ProgramData>) {
          handle_program_data(m, now, out);
        } else if constexpr (std::is_same_v<T, proto::SubmitDag>) {
          handle_submit_dag(envelope.from, m, now, out);
        } else {
          TASKLETS_LOG(kWarn, kLog)
              << "unexpected message " << proto::message_name(envelope.payload);
        }
      },
      envelope.payload);
}

void Broker::on_timer(std::uint64_t timer_id, SimTime now, proto::Outbox& out) {
  if (timer_id == kScanTimer) {
    // Liveness scan: expire providers whose heartbeat is stale.
    const auto deadline_age = static_cast<SimTime>(
        config_.liveness_multiplier *
        static_cast<double>(config_.heartbeat_interval));
    std::vector<NodeId> expired;
    for (const auto& [id, p] : providers_) {
      if (p.online && now - p.last_heartbeat > deadline_age) {
        expired.push_back(id);
      }
    }
    for (const NodeId id : expired) {
      TASKLETS_LOG(kInfo, kLog) << "provider " << id.to_string() << " expired";
      ++stats_.providers_expired;
      on_provider_lost(id, now, out);
    }
    // Draining providers whose grace ran out: re-issue what never arrived.
    std::vector<NodeId> drain_expired;
    for (const auto& [id, p] : providers_) {
      if (p.draining && !p.inflight.empty() &&
          now - p.draining_since > config_.drain_grace) {
        drain_expired.push_back(id);
      }
    }
    for (const NodeId id : drain_expired) {
      TASKLETS_LOG(kWarn, kLog) << "provider " << id.to_string()
                                << " drain grace expired";
      on_provider_lost(id, now, out);
    }
    // Unschedulability check: queued tasklets past the grace period whose
    // QoC filter no registered provider can ever satisfy.
    std::vector<TaskletId> doomed;
    for (const auto& [priority, queue] : pending_) {
      for (const TaskletId id : queue) {
        const auto it = tasklets_.find(id);
        if (it == tasklets_.end() || it->second.done) continue;
        if (now - it->second.submitted_at < config_.unschedulable_grace) continue;
        if (!satisfiable(it->second)) doomed.push_back(id);
      }
    }
    for (const TaskletId id : doomed) {
      const auto tit = tasklets_.find(id);
      if (tit == tasklets_.end()) continue;  // evicted mid-loop
      auto& state = tit->second;
      if (state.done) continue;  // duplicate queue entries
      ++stats_.tasklets_unschedulable;
      fail_tasklet(id, state, proto::TaskletStatus::kUnschedulable,
                   "no registered provider satisfies the QoC constraints", now,
                   out);
    }
    // Lost-message recovery: fence and re-issue attempts that have produced
    // no result within the attempt timeout. The fence (erasing the attempt
    // from the provider's in-flight set and the attempt index) guarantees a
    // late result for the old attempt is ignored, so the re-issue cannot
    // double-report.
    if (config_.attempt_timeout > 0) {
      std::vector<std::pair<AttemptId, TaskletId>> stale;
      for (const auto& [attempt, tasklet_id] : attempt_index_) {
        const auto it = tasklets_.find(tasklet_id);
        if (it == tasklets_.end()) continue;
        const auto ait = it->second.attempts.find(attempt);
        if (ait == it->second.attempts.end()) continue;
        if (now - ait->second.issued_at > config_.attempt_timeout) {
          stale.emplace_back(attempt, tasklet_id);
        }
      }
      for (const auto& [attempt, tasklet_id] : stale) {
        const auto tit = tasklets_.find(tasklet_id);
        if (tit == tasklets_.end()) continue;  // evicted mid-loop
        ++stats_.attempts_timed_out;
        TASKLETS_COUNT("broker.attempts_timed_out", 1);
        auto& state = tit->second;
        if (const auto ait = state.attempts.find(attempt);
            ait != state.attempts.end()) {
          end_attempt_span(state, tasklet_id, ait->second, now, "timeout");
          if (const auto pit = providers_.find(ait->second.provider);
              pit != providers_.end()) {
            pit->second.inflight.erase(attempt);
            pit->second.view.timed_out += 1;
          }
          state.attempts.erase(ait);
        }
        attempt_index_.erase(attempt);
        if (state.done) continue;
        TASKLETS_LOG(kInfo, kLog)
            << "attempt " << attempt.to_string() << " of tasklet "
            << tasklet_id.to_string() << " timed out; re-issuing";
        ++stats_.attempts_lost;
        TASKLETS_COUNT("broker.attempts_lost", 1);
        reissue_or_exhaust(tasklet_id, state, now, out);
      }
      if (!stale.empty()) request_drain(now, out);
    }
    // Straggler mitigation: shadow long-running attempts of non-redundant
    // tasklets with one speculative backup on a different provider.
    if (config_.speculative_after > 0) {
      std::vector<TaskletId> stragglers;
      for (const auto& [attempt, tasklet_id] : attempt_index_) {
        const auto it = tasklets_.find(tasklet_id);
        if (it == tasklets_.end()) continue;
        const TaskletState& state = it->second;
        if (state.done || state.speculated || state.spec.qoc.redundancy > 1) {
          continue;
        }
        const auto attempt_it = state.attempts.find(attempt);
        if (attempt_it == state.attempts.end()) continue;
        if (now - attempt_it->second.issued_at > config_.speculative_after) {
          stragglers.push_back(tasklet_id);
        }
      }
      for (const TaskletId id : stragglers) {
        const auto tit = tasklets_.find(id);
        if (tit == tasklets_.end()) continue;  // evicted mid-loop
        auto& state = tit->second;
        if (state.done || state.speculated) continue;
        state.replicas_pending += 1;
        const AttemptId backup = try_place_replica(id, now, out);
        if (backup.valid()) {
          state.speculated = true;
          state.speculative_attempt = backup;
          ++stats_.speculations;
          TASKLETS_COUNT("broker.speculations", 1);
          trace_instant(state, "speculate", id, now,
                        {{"backup", backup.to_string()}});
        } else {
          state.replicas_pending -= 1;  // no capacity: retry next scan
        }
      }
    }
    // Adaptive straggler defense: same idea as speculative_after, but the
    // threshold is a quantile of *measured* completion durations instead of
    // a fixed knob, and far-gone attempts are fenced and reassigned rather
    // than merely shadowed.
    if (config_.straggler_multiplier > 0) defend_stragglers(now, out);
    // Pool signals: heterogeneity score + per-provider health gauges, on the
    // same cadence as everything else derived from measurement.
    refresh_pool_signals();
    // Program fetches (r3): FetchProgram to the consumer is at-least-once —
    // re-send on the scan cadence for submissions still parked, and fail
    // those past the fetch grace (the consumer is gone or keeps losing
    // frames; without the bytes the tasklet can never run).
    if (!awaiting_program_.empty()) {
      std::vector<TaskletId> fetch_failed;
      for (auto it = awaiting_program_.begin();
           it != awaiting_program_.end();) {
        auto& waiting = it->second;
        std::erase_if(waiting, [&](TaskletId id) {
          const auto tit = tasklets_.find(id);
          return tit == tasklets_.end() || tit->second.done ||
                 !tit->second.awaiting_program;
        });
        NodeId refetch_consumer;
        for (const TaskletId id : waiting) {
          const TaskletState& state = tasklets_.at(id);
          if (now - state.fetch_started > config_.program_fetch_grace) {
            fetch_failed.push_back(id);
          } else {
            refetch_consumer = state.consumer;
          }
        }
        if (refetch_consumer.valid()) {
          ++stats_.program_fetches;
          TASKLETS_COUNT("broker.store.program_fetches", 1);
          out.send(refetch_consumer, proto::FetchProgram{it->first});
        }
        it = waiting.empty() ? awaiting_program_.erase(it) : ++it;
      }
      for (const TaskletId id : fetch_failed) {
        const auto tit = tasklets_.find(id);
        if (tit == tasklets_.end()) continue;  // evicted mid-loop
        auto& state = tit->second;
        if (state.done) continue;
        state.awaiting_program = false;
        ++stats_.tasklets_exhausted;
        fail_tasklet(id, state, proto::TaskletStatus::kExhausted,
                     "program fetch failed", now, out);
      }
    }
    out.arm_timer(kScanTimer, config_.scan_interval);
    return;
  }
  if ((timer_id & kDeadlineTimerBit) != 0) {
    const TaskletId id{timer_id & ~kDeadlineTimerBit};
    const auto it = tasklets_.find(id);
    if (it == tasklets_.end() || it->second.done) return;
    ++stats_.tasklets_deadline;
    fail_tasklet(id, it->second, proto::TaskletStatus::kDeadlineExceeded,
                 "QoC deadline elapsed", now, out);
  }
}

// --- registry ---------------------------------------------------------------------

void Broker::handle_register(NodeId from, const proto::RegisterProvider& m,
                             SimTime now, proto::Outbox& out) {
  ProviderState& p = providers_[from];
  const bool rejoin = p.view.id.valid();
  if (rejoin && m.incarnation != 0 && m.incarnation == p.incarnation) {
    // Retransmit of an already-acked registration (the provider re-sends
    // until our ack gets through): refresh liveness, re-ack, and leave
    // in-flight work alone — this is NOT a restart.
    p.last_heartbeat = now;
    p.online = true;
    p.draining = false;
    out.send(from, proto::RegisterAck{m.incarnation});
    request_drain(now, out);
    return;
  }
  if (rejoin && !p.inflight.empty()) {
    // A (re-)registration under a new incarnation means the provider
    // restarted: anything the broker still thinks is running there died
    // with the previous incarnation.
    on_provider_lost(from, now, out);
  }
  if (rejoin) {
    // The program cache died with the old process: forget the warm set so
    // affinity scheduling doesn't send digests the provider cannot resolve.
    p.warm.clear();
    p.warm_order.clear();
  }
  p.view.id = from;
  p.view.capability = m.capability;
  p.last_heartbeat = now;
  p.online = true;
  p.draining = false;
  if (!rejoin) {
    p.view.observed_reliability = 1.0;
    p.speed = SpeedEstimator(config_.speed_estimator);
  }
  p.incarnation = m.incarnation;
  out.send(from, proto::RegisterAck{m.incarnation});
  TASKLETS_LOG(kInfo, kLog) << "provider " << from.to_string() << " registered ("
                            << proto::to_string(m.capability.device_class) << ", "
                            << m.capability.speed_fuel_per_sec / 1e6 << " Mfuel/s, "
                            << m.capability.slots << " slots)";
  request_drain(now, out);
}

void Broker::handle_deregister(NodeId from, const proto::DeregisterProvider& m,
                               SimTime now, proto::Outbox& out) {
  const auto it = providers_.find(from);
  if (it == providers_.end()) return;
  if (m.draining && !it->second.inflight.empty()) {
    // Graceful drain: no new assignments, but give the provider a grace
    // window to checkpoint and report its in-flight work as suspended (the
    // migration path). The liveness scan re-issues whatever is still
    // outstanding when the grace expires.
    it->second.online = false;
    it->second.draining = true;
    it->second.draining_since = now;
    return;
  }
  on_provider_lost(from, now, out);
}

void Broker::handle_heartbeat(NodeId from, const proto::Heartbeat&, SimTime now,
                              proto::Outbox& out) {
  const auto it = providers_.find(from);
  if (it == providers_.end()) {
    // Heartbeat from an unknown node: it must (re)register first; ignore.
    return;
  }
  it->second.last_heartbeat = now;
  if (!it->second.online) {
    // A heartbeat from an expired provider revives it (it never actually
    // left, the network hiccuped). Its previous in-flight work was already
    // re-issued; it simply offers capacity again.
    it->second.online = true;
  }
  request_drain(now, out);
}

// --- submission & scheduling ----------------------------------------------------

void Broker::handle_submit(NodeId from, const proto::SubmitTasklet& m, SimTime now,
                           proto::Outbox& out) {
  const TaskletId id = m.spec.id;
  if (const auto it = tasklets_.find(id); it != tasklets_.end()) {
    // Submission is at-least-once from the consumer's side. A retransmit of
    // a tasklet still in progress is dropped; one for a concluded tasklet
    // replays the retained terminal report (the original TaskletDone may
    // have been lost).
    ++stats_.duplicate_submits;
    TASKLETS_COUNT("broker.duplicate_submits", 1);
    if (it->second.done && it->second.final_report.has_value()) {
      out.send(from, proto::TaskletDone{*it->second.final_report});
    }
    return;
  }
  ++stats_.tasklets_submitted;
  TASKLETS_COUNT("broker.submitted", 1);
  TaskletState& state = tasklets_[id];
  state.spec = m.spec;
  state.consumer = from;
  state.trace = m.trace;
  state.submitted_at = now;
  state.replicas_pending = std::max<std::uint32_t>(1, m.spec.qoc.redundancy);

  // Deadline admission control: refuse work the measured pool provably
  // cannot finish in time, before it occupies a slot or the queue.
  if (admission_rejects(id, state, now, out)) return;
  // Unsatisfiable tasklets queue rather than fail: providers may still be
  // registering. The scan timer declares them unschedulable after the grace
  // period (see on_timer).
  if (m.spec.qoc.deadline > 0) {
    out.arm_timer(kDeadlineTimerBit | id.value(), m.spec.qoc.deadline);
  }
  // Content store (r3): digest the body, answer from the memo, intern the
  // program. A memo hit concluded the tasklet; a DigestBody with unknown
  // bytes is parked until the consumer answers our FetchProgram.
  if (resolve_body(id, state, now, out)) return;
  if (batching_) {
    // Submit burst: defer placement to the single drain at on_batch_end —
    // queueing is O(1) here, and the batched drain places the whole burst
    // with one pool snapshot instead of one per submission.
    for (std::uint32_t i = 0; i < tasklets_.at(id).replicas_pending; ++i) {
      enqueue_replica(id);
    }
    need_drain_ = true;
    return;
  }
  while (state.replicas_pending > 0 && try_place_replica(id, now, out).valid()) {
  }
  for (std::uint32_t i = 0; i < tasklets_.at(id).replicas_pending; ++i) {
    enqueue_replica(id);
  }
}

void Broker::handle_cancel(const proto::CancelTasklet& m, SimTime now) {
  const auto it = tasklets_.find(m.tasklet);
  if (it == tasklets_.end() || it->second.done) return;
  // Mark done; in-flight results will be ignored, queued replicas skipped.
  it->second.done = true;
  close_open_spans(it->second, m.tasklet, now);
  release_program_ref(it->second);
}

// Whether a provider's static capability satisfies the tasklet's QoC filter
// (locality and cost); liveness and load are checked separately.
bool Broker::qoc_admits(const TaskletState& state,
                        const proto::Capability& capability) {
  const auto& qoc = state.spec.qoc;
  const auto& origin = state.spec.origin_locality;
  const auto& tag = capability.locality;
  if (qoc.locality == proto::Locality::kLocalOnly &&
      (origin.empty() || tag != origin)) {
    return false;
  }
  if (qoc.locality == proto::Locality::kRemoteOnly && !origin.empty() &&
      tag == origin) {
    return false;
  }
  if (qoc.cost_ceiling > 0.0 && capability.cost_per_gfuel > qoc.cost_ceiling) {
    return false;
  }
  return true;
}

bool Broker::satisfiable(const TaskletState& state) const {
  for (const auto& [id, p] : providers_) {
    if (qoc_admits(state, p.view.capability)) return true;
  }
  return false;
}

std::vector<ProviderView> Broker::eligible_providers(const TaskletState& state) const {
  std::vector<ProviderView> eligible;
  for (const auto& [id, p] : providers_) {
    if (!p.online) continue;
    if (p.inflight.size() >= p.view.capability.slots) continue;
    if (!qoc_admits(state, p.view.capability)) continue;
    // Hard rule: concurrent replicas never share a provider.
    bool inflight_here = false;
    for (const auto& [attempt_id, attempt] : state.attempts) {
      if (attempt.provider == id) {
        inflight_here = true;
        break;
      }
    }
    if (inflight_here) continue;
    ProviderView view = p.view;
    view.busy_slots = static_cast<std::uint32_t>(p.inflight.size());
    // Cache affinity: only meaningful when digest assignment is on — with it
    // off every assign ships the full program anyway.
    view.warm = config_.dedup_assign && state.program_digest.valid() &&
                p.warm.contains(state.program_digest);
    eligible.push_back(std::move(view));
  }
  // Soft rule: prefer providers this tasklet has never touched — retries
  // after rejection/loss and vote tie-breakers should land on fresh
  // providers whenever any exist.
  std::vector<ProviderView> fresh;
  for (const auto& view : eligible) {
    if (!state.used_providers.contains(view.id)) fresh.push_back(view);
  }
  if (!fresh.empty()) eligible = std::move(fresh);
  // Deterministic order for the policies (unordered_map iteration is not).
  std::sort(eligible.begin(), eligible.end(),
            [](const ProviderView& a, const ProviderView& b) { return a.id < b.id; });
  return eligible;
}

AttemptId Broker::try_place_replica(TaskletId id, SimTime now, proto::Outbox& out) {
  TaskletState& state = tasklets_.at(id);
  if (state.done || state.replicas_pending == 0) return AttemptId{};
  const auto eligible = eligible_providers(state);
  if (eligible.empty()) return AttemptId{};
  SchedulingContext context;
  context.eligible = eligible;
  context.pool_heterogeneity = pool_heterogeneity_;
  // Baseline for selective policies: the fastest *online and QoC-admissible*
  // provider — waiting for a fast slot the filter excludes would be futile.
  for (const auto& [pid, p] : providers_) {
    if (p.online && qoc_admits(state, p.view.capability)) {
      context.best_online_speed = std::max(context.best_online_speed,
                                           p.view.capability.speed_fuel_per_sec);
      context.best_online_effective_speed = std::max(
          context.best_online_effective_speed, p.view.effective_speed());
    }
  }
  const NodeId choice = scheduler_->pick(state.spec, context, rng_);
  if (!choice.valid()) return AttemptId{};  // policy refused; stays queued
  return issue_attempt(id, state, choice, now, out);
}

AttemptId Broker::issue_attempt(TaskletId id, TaskletState& state, NodeId choice,
                                SimTime now, proto::Outbox& out) {
  ProviderState& provider = providers_.at(choice);
  const AttemptId attempt = attempt_ids_.next();
  const bool tracing = config_.trace != nullptr && state.trace.active();
  AttemptState attempt_state{choice, now, tracing ? next_span_id() : 0};
  if (tracing) {
    if (state.attempts_total == 0) {
      // Queue wait: submission to the moment the first attempt is placed.
      Span queue_span;
      queue_span.trace_id = state.trace.trace_id;
      queue_span.parent_span = state.trace.parent_span;
      queue_span.name = "queue";
      queue_span.node = this->id();
      queue_span.tasklet = id;
      queue_span.start = state.submitted_at;
      queue_span.end = now;
      config_.trace->add(std::move(queue_span));
    }
    trace_instant(state, "schedule", id, now,
                  {{"provider", choice.to_string()},
                   {"attempt", attempt.to_string()}});
  }
  provider.inflight.insert(attempt);
  state.attempts.emplace(attempt, attempt_state);
  state.used_providers.insert(choice);
  state.attempts_total += 1;
  state.replicas_pending -= 1;
  attempt_index_.emplace(attempt, id);
  ++stats_.attempts_issued;
  TASKLETS_COUNT("broker.attempts_issued", 1);
  if (metrics::enabled()) {
    // Per-provider assignment counts. The registry entry is immortal, so
    // the reference is bound once per provider and the name is formatted
    // once, not per attempt.
    if (provider.assigned_counter == nullptr) {
      provider.assigned_counter = &metrics::MetricsRegistry::instance().counter(
          "broker.assigned." + choice.to_string());
    }
    provider.assigned_counter->inc();
  }

  proto::AssignTasklet assign;
  assign.attempt = attempt;
  assign.tasklet = id;
  assign.body = make_assign_body(state, provider);
  assign.max_fuel = config_.default_max_fuel;
  // Migrated work resumes from the latest checkpoint (single-replica only;
  // redundant tasklets never migrate, so this stays empty for them).
  assign.resume_snapshot = state.resume_snapshot;
  // The attempt span is the parent of everything the provider records.
  assign.trace = TraceContext{state.trace.trace_id, attempt_state.span};
  out.send(choice, std::move(assign));
  return attempt;
}

void Broker::enqueue_replica(TaskletId id) {
  const std::uint8_t priority = tasklets_.at(id).spec.qoc.priority;
  pending_[priority].push_back(id);
  ++pending_count_;
  stats_.max_queue_length =
      std::max<std::uint64_t>(stats_.max_queue_length, pending_count_);
  TASKLETS_GAUGE_SET("broker.queue_depth",
                     static_cast<std::int64_t>(pending_count_));
}

bool Broker::batchable_shape(const TaskletState& state) const {
  // A tasklet joins a batched placement pass only when nothing about it
  // individualises the decision: no prior attempts (no used-provider
  // exclusions), no locality/cost filter, no redundancy or speed goal (the
  // batch scorer is goal-neutral), no migration snapshot, and no program
  // digest when digest affinity is on (warm-provider preference is
  // per-tasklet state).
  const auto& qoc = state.spec.qoc;
  return state.attempts.empty() && state.used_providers.empty() &&
         state.resume_snapshot.empty() &&
         qoc.locality == proto::Locality::kAny && qoc.cost_ceiling <= 0.0 &&
         qoc.redundancy <= 1 && qoc.speed == proto::SpeedGoal::kNone &&
         !(config_.dedup_assign && state.program_digest.valid());
}

void Broker::drain_queue_batched(SimTime now, proto::Outbox& out) {
  // One pool snapshot for the whole pass instead of one eligible-set
  // rebuild per queued tasklet: O(P log P + B log P) for a burst of B
  // instead of O(B * P).
  batch_snapshot_.clear();
  SchedulingContext context;
  context.pool_heterogeneity = pool_heterogeneity_;
  std::size_t free_slots = 0;
  for (const auto& [pid, p] : providers_) {
    if (!p.online) continue;
    context.best_online_speed = std::max(context.best_online_speed,
                                         p.view.capability.speed_fuel_per_sec);
    context.best_online_effective_speed =
        std::max(context.best_online_effective_speed, p.view.effective_speed());
    const std::size_t busy = p.inflight.size();
    if (busy >= p.view.capability.slots) continue;
    free_slots += p.view.capability.slots - busy;
    ProviderView view = p.view;
    view.busy_slots = static_cast<std::uint32_t>(busy);
    view.warm = false;  // batchable tasklets carry no digest affinity
    batch_snapshot_.push_back(std::move(view));
  }
  if (batch_snapshot_.empty()) return;
  std::sort(
      batch_snapshot_.begin(), batch_snapshot_.end(),
      [](const ProviderView& a, const ProviderView& b) { return a.id < b.id; });

  // The FIFO prefix of shape-neutral tasklets per priority class, highest
  // class first, capped at the free slots. A non-batchable head stops its
  // class — within a class the batched pass must not overtake it.
  batch_ids_.clear();
  for (auto& [priority, queue] : pending_) {
    if (batch_ids_.size() >= free_slots) break;
    for (const TaskletId id : queue) {
      if (batch_ids_.size() >= free_slots) break;
      const auto it = tasklets_.find(id);
      if (it == tasklets_.end() || it->second.done ||
          it->second.replicas_pending == 0) {
        continue;  // stale entry: the per-tasklet loop below pops it
      }
      if (!batchable_shape(it->second)) break;
      batch_ids_.push_back(id);
    }
  }
  if (batch_ids_.size() < 2) return;  // nothing to amortize

  batch_choices_.resize(batch_ids_.size());
  const std::size_t placed = scheduler_->pick_batch(
      context, std::span<ProviderView>(batch_snapshot_), rng_,
      std::span<NodeId>(batch_choices_.data(), batch_ids_.size()));
  for (std::size_t i = 0; i < placed; ++i) {
    const TaskletId id = batch_ids_[i];
    issue_attempt(id, tasklets_.at(id), batch_choices_[i], now, out);
  }
  // Placed tasklets are deliberately not popped here: issue_attempt zeroed
  // their replicas_pending, so the per-tasklet loop below removes their
  // queue entries as stale and handles whatever the batch left behind.
}

void Broker::drain_queue(SimTime now, proto::Outbox& out) {
  // Batched fast path first: a backlog of shape-neutral tasklets is placed
  // with one pool snapshot; the per-tasklet loop below then covers the
  // remainder (QoC-constrained heads, policies without batch support).
  if (pending_count_ >= 4) drain_queue_batched(now, out);
  // Strict priority across classes, FIFO with head-of-line semantics within
  // a class. A head that cannot be placed blocks only its own class — an
  // unplaceable high-priority tasklet (e.g. a local-only one waiting for
  // its site) must not starve lower classes forever.
  for (auto& [priority, queue] : pending_) {
    while (!queue.empty()) {
      const TaskletId id = queue.front();
      const auto it = tasklets_.find(id);
      if (it == tasklets_.end() || it->second.done ||
          it->second.replicas_pending == 0) {
        queue.pop_front();
        --pending_count_;
        continue;
      }
      if (!try_place_replica(id, now, out).valid()) break;  // next class
      queue.pop_front();
      --pending_count_;
    }
  }
  TASKLETS_GAUGE_SET("broker.queue_depth",
                     static_cast<std::int64_t>(pending_count_));
}

// --- results & lifecycle ----------------------------------------------------------

void Broker::handle_attempt_result(NodeId from, const proto::AttemptResult& m,
                                   SimTime now, proto::Outbox& out) {
  // Free the provider slot — but only if this attempt was genuinely
  // outstanding there. Duplicate results (network retransmits) and results
  // for attempts already fenced (timeout, provider loss) must not distort
  // the reliability EWMA, the speed estimator, or the completion counters.
  bool genuine = false;
  if (const auto pit = providers_.find(from); pit != providers_.end()) {
    if (pit->second.inflight.erase(m.attempt) > 0) {
      genuine = true;
      auto& view = pit->second.view;
      const double success =
          m.outcome.status == proto::AttemptStatus::kOk ? 1.0 : 0.0;
      view.observed_reliability = (1.0 - config_.reliability_alpha) *
                                      view.observed_reliability +
                                  config_.reliability_alpha * success;
      if (m.outcome.status == proto::AttemptStatus::kOk) {
        view.completed += 1;
      } else {
        view.failed += 1;
      }
    }
  }

  const auto idx = attempt_index_.find(m.attempt);
  if (idx == attempt_index_.end()) {
    // Late result for a concluded or fenced attempt.
    ++stats_.duplicate_results;
    TASKLETS_COUNT("broker.duplicate_results", 1);
    request_drain(now, out);
    return;
  }
  const TaskletId id = idx->second;
  auto& state = tasklets_.at(id);
  // Attempt-id fencing: a result only counts if it comes from the provider
  // the attempt was issued to (guards against corrupted/misrouted frames).
  if (const auto ait = state.attempts.find(m.attempt);
      ait != state.attempts.end() && ait->second.provider != from) {
    ++stats_.duplicate_results;
    TASKLETS_COUNT("broker.duplicate_results", 1);
    request_drain(now, out);
    return;
  }
  attempt_index_.erase(idx);
  if (const auto ait = state.attempts.find(m.attempt);
      ait != state.attempts.end()) {
    end_attempt_span(state, id, ait->second, now,
                     proto::to_string(m.outcome.status));
    if (genuine && m.outcome.status == proto::AttemptStatus::kOk) {
      record_speed_sample(from, m.outcome.fuel_used,
                          now - ait->second.issued_at);
    }
  }
  state.attempts.erase(m.attempt);
  if (state.done) {
    request_drain(now, out);
    return;
  }

  switch (m.outcome.status) {
    case proto::AttemptStatus::kOk: {
      ++stats_.attempts_ok;
      TASKLETS_COUNT("broker.attempts_ok", 1);
      state.fuel_total += m.outcome.fuel_used;
      const bool from_backup =
          state.speculated && m.attempt == state.speculative_attempt;
      record_vote(state, m.outcome, from);
      maybe_conclude(id, state, now, out);
      if (state.done && from_backup) ++stats_.speculation_wins;
      break;
    }
    case proto::AttemptStatus::kTrap:
      // Deterministic failure: every replica would trap identically.
      fail_tasklet(id, state, proto::TaskletStatus::kFailed, m.outcome.error, now,
                   out);
      break;
    case proto::AttemptStatus::kProviderLost: {
      ++stats_.attempts_lost;
      TASKLETS_COUNT("broker.attempts_lost", 1);
      reissue_or_exhaust(id, state, now, out);
      break;
    }
    case proto::AttemptStatus::kSuspended: {
      // Migration: the provider drained and checkpointed. Re-place the
      // tasklet with the snapshot so the next provider resumes. Redundant
      // tasklets fall back to plain re-issue (their replicas cannot share a
      // single checkpoint).
      if (state.spec.qoc.redundancy <= 1 && !m.outcome.snapshot.empty()) {
        state.resume_snapshot = m.outcome.snapshot;
        ++stats_.migrations;
        TASKLETS_COUNT("broker.migrations", 1);
        trace_instant(state, "migrate", id, now,
                      {{"from", from.to_string()},
                       {"snapshot_bytes",
                        std::to_string(m.outcome.snapshot.size())}});
        state.replicas_pending += 1;
        if (!try_place_replica(id, now, out).valid()) enqueue_replica(id);
        break;
      }
      ++stats_.attempts_lost;
      TASKLETS_COUNT("broker.attempts_lost", 1);
      reissue_or_exhaust(id, state, now, out);
      break;
    }
    case proto::AttemptStatus::kRejected: {
      // An instant "no": the provider had no slot or was offline. Re-place
      // under the (larger) rejection budget — the QoC re-issue budget is for
      // work actually lost.
      // Whatever the reason, stop believing the provider's cache holds this
      // program — "program unavailable" rejections in particular mean its
      // fetches failed, and a digest-only retry there would loop.
      if (state.program_digest.valid()) {
        if (const auto pit = providers_.find(from); pit != providers_.end()) {
          pit->second.warm.erase(state.program_digest);
        }
      }
      ++stats_.attempts_lost;
      TASKLETS_COUNT("broker.attempts_lost", 1);
      if (state.rejections < config_.max_rejections) {
        state.rejections += 1;
        state.replicas_pending += 1;
        ++stats_.reissues;
        TASKLETS_COUNT("broker.reissues", 1);
        trace_instant(state, "retry", id, now,
                      {{"reason", "rejected"}, {"by", from.to_string()}});
        if (!try_place_replica(id, now, out).valid()) enqueue_replica(id);
      } else if (state.attempts.empty() && state.replicas_pending == 0) {
        ++stats_.tasklets_exhausted;
        fail_tasklet(id, state, proto::TaskletStatus::kExhausted,
                     "rejection budget exhausted", now, out);
      }
      break;
    }
  }
  request_drain(now, out);
}

void Broker::on_provider_lost(NodeId provider, SimTime now, proto::Outbox& out) {
  auto& p = providers_.at(provider);
  p.online = false;
  p.draining = false;
  const auto inflight = std::move(p.inflight);
  p.inflight.clear();
  // Synthesize loss results for every in-flight attempt so the normal
  // re-issue path runs.
  for (const AttemptId attempt : inflight) {
    const auto idx = attempt_index_.find(attempt);
    if (idx == attempt_index_.end()) continue;
    proto::AttemptResult lost;
    lost.attempt = attempt;
    lost.tasklet = idx->second;
    lost.outcome.status = proto::AttemptStatus::kProviderLost;
    lost.outcome.error = "provider lost";
    // Reuse the handler but without crediting the (gone) provider.
    const TaskletId id = idx->second;
    attempt_index_.erase(idx);
    const auto tit = tasklets_.find(id);
    if (tit == tasklets_.end()) continue;  // evicted terminal record
    auto& state = tit->second;
    if (const auto ait = state.attempts.find(attempt);
        ait != state.attempts.end()) {
      end_attempt_span(state, id, ait->second, now, "provider_lost");
    }
    state.attempts.erase(attempt);
    if (state.done) continue;
    ++stats_.attempts_lost;
    TASKLETS_COUNT("broker.attempts_lost", 1);
    reissue_or_exhaust(id, state, now, out);
  }
  request_drain(now, out);
}

void Broker::reissue_or_exhaust(TaskletId id, TaskletState& state, SimTime now,
                                proto::Outbox& out) {
  if (state.reissues_used < state.spec.qoc.max_reissues) {
    state.reissues_used += 1;
    state.replicas_pending += 1;
    ++stats_.reissues;
    TASKLETS_COUNT("broker.reissues", 1);
    trace_instant(state, "retry", id, now,
                  {{"reason", "lost"},
                   {"reissue", std::to_string(state.reissues_used)}});
    if (!try_place_replica(id, now, out).valid()) enqueue_replica(id);
  } else if (state.attempts.empty() && state.replicas_pending == 0) {
    ++stats_.tasklets_exhausted;
    fail_tasklet(id, state, proto::TaskletStatus::kExhausted,
                 "re-issue budget exhausted", now, out);
  }
}

void Broker::defend_stragglers(SimTime now, proto::Outbox& out) {
  const SimTime bound =
      completions_.bound(config_.straggler_quantile, config_.straggler_multiplier,
                         config_.straggler_min_samples);
  if (bound <= 0) return;
  // Classify first — fencing mutates attempt_index_ mid-iteration otherwise.
  std::vector<std::pair<AttemptId, TaskletId>> fence;  // past 2x the bound
  std::vector<TaskletId> shadow;                       // past 1x the bound
  for (const auto& [attempt, tasklet_id] : attempt_index_) {
    const auto it = tasklets_.find(tasklet_id);
    if (it == tasklets_.end() || it->second.done) continue;
    const auto ait = it->second.attempts.find(attempt);
    if (ait == it->second.attempts.end()) continue;
    const SimTime age = now - ait->second.issued_at;
    if (age > 2 * bound) {
      fence.emplace_back(attempt, tasklet_id);
    } else if (age > bound && !it->second.speculated &&
               it->second.spec.qoc.redundancy <= 1) {
      shadow.push_back(tasklet_id);
    }
  }
  // Far-gone attempts: fence (the provider's slot is freed and its late
  // result can no longer count — the same guarantee attempt_timeout gives)
  // and reassign. A tasklet that was already shadowed by a backup is NOT
  // re-issued again: the live backup is the reassignment.
  for (const auto& [attempt, tasklet_id] : fence) {
    const auto tit = tasklets_.find(tasklet_id);
    if (tit == tasklets_.end()) continue;  // evicted mid-loop
    auto& state = tit->second;
    NodeId provider;
    if (const auto ait = state.attempts.find(attempt);
        ait != state.attempts.end()) {
      provider = ait->second.provider;
      end_attempt_span(state, tasklet_id, ait->second, now, "straggler");
      if (const auto pit = providers_.find(provider); pit != providers_.end()) {
        pit->second.inflight.erase(attempt);
        pit->second.view.straggler_fences += 1;
      }
      state.attempts.erase(ait);
    }
    attempt_index_.erase(attempt);
    if (state.done) continue;
    ++stats_.straggler_reassigns;
    TASKLETS_COUNT("broker.straggler_reassigns", 1);
    trace_instant(state, "reassign", tasklet_id, now,
                  {{"from", provider.to_string()},
                   {"bound", format_duration(2 * bound)}});
    if (state.attempts.empty()) {
      ++stats_.attempts_lost;
      TASKLETS_COUNT("broker.attempts_lost", 1);
      reissue_or_exhaust(tasklet_id, state, now, out);
    }
  }
  // Moderately late attempts: one speculative backup, exactly like the
  // speculative_after path (first result wins, loser fenced on arrival).
  for (const TaskletId id : shadow) {
    const auto tit = tasklets_.find(id);
    if (tit == tasklets_.end()) continue;  // evicted mid-loop
    auto& state = tit->second;
    if (state.done || state.speculated) continue;
    state.replicas_pending += 1;
    const AttemptId backup = try_place_replica(id, now, out);
    if (backup.valid()) {
      state.speculated = true;
      state.speculative_attempt = backup;
      ++stats_.speculations;
      TASKLETS_COUNT("broker.speculations", 1);
      trace_instant(state, "speculate", id, now,
                    {{"backup", backup.to_string()}, {"reason", "straggler"}});
    } else {
      state.replicas_pending -= 1;  // no capacity: retry next scan
    }
  }
  if (!fence.empty()) request_drain(now, out);
}

bool Broker::admission_rejects(TaskletId id, TaskletState& state, SimTime now,
                               proto::Outbox& out) {
  if (!config_.admission_control || state.spec.qoc.deadline <= 0) return false;
  // Only synthetic bodies declare their fuel up front; VM programs' cost is
  // unknown until they run, so they are always admitted.
  const auto* synthetic = std::get_if<proto::SyntheticBody>(&state.spec.body);
  if (synthetic == nullptr || synthetic->fuel == 0) return false;
  // Fastest admissible provider at *measured* speed. No online admissible
  // provider is not a rejection — providers may still be registering; the
  // unschedulable grace in the scan timer owns that case.
  double best = 0.0;
  for (const auto& [pid, p] : providers_) {
    if (p.online && qoc_admits(state, p.view.capability)) {
      best = std::max(best, p.view.effective_speed());
    }
  }
  if (best <= 0.0) return false;
  const double predicted_s =
      config_.admission_safety * static_cast<double>(synthetic->fuel) / best;
  if (from_seconds(predicted_s) <= state.spec.qoc.deadline) return false;
  ++stats_.admission_rejected;
  TASKLETS_COUNT("broker.admission_rejected", 1);
  trace_instant(state, "admission_reject", id, now,
                {{"predicted", format_duration(from_seconds(predicted_s))},
                 {"deadline", format_duration(state.spec.qoc.deadline)}});
  ++stats_.tasklets_unschedulable;
  fail_tasklet(id, state, proto::TaskletStatus::kUnschedulable,
               "QoC deadline infeasible for the current pool", now, out);
  return true;
}

std::uint32_t Broker::majority_threshold(const TaskletState& state) const {
  const std::uint32_t r = std::max<std::uint32_t>(1, state.spec.qoc.redundancy);
  return r / 2 + 1;
}

void Broker::record_vote(TaskletState& state, const proto::AttemptOutcome& outcome,
                         NodeId provider) {
  for (auto& vote : state.votes) {
    if (tvm::args_equal(vote.result, outcome.result)) {
      vote.count += 1;
      return;
    }
  }
  VoteEntry entry;
  entry.result = outcome.result;
  entry.fuel = outcome.fuel_used;
  entry.instructions = outcome.instructions;
  entry.count = 1;
  entry.first_provider = provider;
  state.votes.push_back(std::move(entry));
}

void Broker::maybe_conclude(TaskletId id, TaskletState& state, SimTime now,
                            proto::Outbox& out) {
  const std::uint32_t threshold = majority_threshold(state);
  for (const auto& vote : state.votes) {
    if (vote.count >= threshold) {
      complete_tasklet(id, state, vote, now, out);
      return;
    }
  }
  // All replicas reported but no majority (faulty providers disagree):
  // issue tie-breaker replicas if the re-issue budget allows, else fail.
  if (state.attempts.empty() && state.replicas_pending == 0) {
    if (state.reissues_used < state.spec.qoc.max_reissues) {
      state.reissues_used += 1;
      state.replicas_pending += 1;
      ++stats_.reissues;
      if (!try_place_replica(id, now, out).valid()) enqueue_replica(id);
    } else {
      ++stats_.tasklets_exhausted;
      fail_tasklet(id, state, proto::TaskletStatus::kExhausted,
                   "replica results never reached a majority", now, out);
    }
  }
}

void Broker::complete_tasklet(TaskletId id, TaskletState& state,
                              const VoteEntry& winner, SimTime now,
                              proto::Outbox& out) {
  ++stats_.tasklets_completed;
  TASKLETS_COUNT("broker.completed", 1);
  // Count replicas that disagreed with the winning value.
  for (const auto& vote : state.votes) {
    if (!tvm::args_equal(vote.result, winner.result)) {
      stats_.votes_overruled += vote.count;
    }
  }
  // Memoize the verified (vote-winning) result so repeat submissions of the
  // same (program, args) under a memoizing QoC complete without a provider
  // round trip. Only opted-in results are stored: the knob is the caller's
  // assertion that the tasklet is a pure function of its arguments.
  if (state.spec.qoc.memoize && state.program_digest.valid() &&
      state.args_digest.valid()) {
    memo_.insert({state.program_digest, state.args_digest},
                 {winner.result, winner.fuel, winner.instructions,
                  winner.first_provider});
    ++stats_.memo_inserts;
    TASKLETS_COUNT("broker.store.memo_inserts", 1);
  }
  proto::TaskletReport report;
  report.id = id;
  report.job = state.spec.job;
  report.status = proto::TaskletStatus::kCompleted;
  report.result = winner.result;
  report.fuel_used = winner.fuel;
  report.instructions = winner.instructions;
  report.attempts = state.attempts_total;
  report.executed_by = winner.first_provider;
  report.latency = now - state.submitted_at;
  finish(id, state, std::move(report), out);
}

void Broker::fail_tasklet(TaskletId id, TaskletState& state,
                          proto::TaskletStatus status, std::string error,
                          SimTime now, proto::Outbox& out) {
  if (status == proto::TaskletStatus::kFailed) ++stats_.tasklets_failed;
  if (metrics::enabled()) {
    metrics::MetricsRegistry::instance()
        .counter(std::string("broker.failed.") +
                 std::string(proto::to_string(status)))
        .inc();
  }
  proto::TaskletReport report;
  report.id = id;
  report.job = state.spec.job;
  report.status = status;
  report.attempts = state.attempts_total;
  report.latency = now - state.submitted_at;
  report.error = std::move(error);
  finish(id, state, std::move(report), out);
}

void Broker::finish(TaskletId id, TaskletState& state, proto::TaskletReport report,
                    proto::Outbox& out) {
  state.done = true;
  release_program_ref(state);
  // Outstanding attempt index entries for this tasklet stay until their
  // results arrive (and are then ignored); replicas pending in the queue are
  // skipped by drain_queue.
  TASKLETS_OBSERVE("broker.latency_ns", static_cast<double>(report.latency));
  // Both callers computed latency as (now - submitted_at), so the terminal
  // instant's timestamp can be reconstructed without threading `now` here.
  const SimTime terminal = state.submitted_at + report.latency;
  close_open_spans(state, id, terminal);
  trace_instant(state, "report", id, terminal,
                {{"status", std::string(proto::to_string(report.status))},
                 {"attempts", std::to_string(report.attempts)}});
  // Retained so duplicate submissions replay the same terminal report.
  state.final_report = report;
  if (state.dag.valid()) {
    // Internal DAG node (r4): the result is delegated broker-side into the
    // node's dependents instead of round-tripping through a consumer.
    on_dag_node_done(state, report, terminal, out);
    return;
  }
  if (config_.terminal_retention > 0) {
    // Bounded replay window: evict the oldest concluded records FIFO. The
    // just-finished tasklet sits at the back, so it always survives its own
    // finish. Stragglers of an evicted tasklet resolve as late results
    // (attempt_index_ entries are scrubbed here) and a duplicate submit of
    // one re-runs instead of replaying — the memo table still fences
    // memoizable re-runs.
    terminal_order_.push_back(id);
    while (terminal_order_.size() > config_.terminal_retention) {
      const TaskletId victim = terminal_order_.front();
      terminal_order_.pop_front();
      const auto vit = tasklets_.find(victim);
      if (vit == tasklets_.end() || !vit->second.done) continue;
      for (const auto& [attempt, attempt_state] : vit->second.attempts) {
        attempt_index_.erase(attempt);
      }
      tasklets_.erase(vit);
    }
  }
  out.send(state.consumer, proto::TaskletDone{std::move(report)});
}

// --- content store (r3) ---------------------------------------------------------

bool Broker::resolve_body(TaskletId id, TaskletState& state, SimTime now,
                          proto::Outbox& out) {
  // DAG node tasklets (r4) arrive with their identity pre-seeded: the
  // program digest and the *Merkle* digest standing in for args. Keep it —
  // their memo entries must key the whole upstream cone, not the resolved
  // argument values.
  const bool merkle_keyed = state.dag.valid();
  if (const auto* vm = std::get_if<proto::VmBody>(&state.spec.body)) {
    state.program_digest = store::digest_bytes(vm->program);
    if (!merkle_keyed) state.args_digest = store::digest_args(vm->args);
    if (try_memo_hit(id, state, now, out)) return true;
    // Intern and pin the program: assigns can now go digest-only to warm
    // providers, and future DigestBody submissions of it resolve locally.
    blobs_.put(state.program_digest, vm->program);
    blobs_.ref(state.program_digest);
    state.program_ref = true;
    // Digest-only submissions may have raced ahead of this inline one (they
    // are smaller, so the network delivers them first); they parked on this
    // digest and can run now.
    unpark_waiters(state.program_digest, /*deduped=*/true, now, out);
    return false;
  }
  if (const auto* digest = std::get_if<proto::DigestBody>(&state.spec.body)) {
    state.program_digest = digest->program_digest;
    if (!merkle_keyed) state.args_digest = store::digest_args(digest->args);
    if (try_memo_hit(id, state, now, out)) return true;
    if (blobs_.contains(state.program_digest)) {
      blobs_.ref(state.program_digest);
      state.program_ref = true;
      ++stats_.program_dedup_hits;
      TASKLETS_COUNT("broker.store.program_dedup_hits", 1);
      return false;
    }
    // Unknown content: pull the bytes from the submitting consumer. The
    // tasklet parks (deadline timer already armed) until ProgramData lands;
    // the scan timer re-sends the fetch and enforces program_fetch_grace.
    // One FetchProgram per digest, however many tasklets pile up on it —
    // later waiters ride the in-flight fetch (the scan retry covers loss).
    state.awaiting_program = true;
    state.fetch_started = now;
    auto& waiters = awaiting_program_[state.program_digest];
    const bool fetch_in_flight = !waiters.empty();
    waiters.push_back(id);
    trace_instant(state, "program_fetch", id, now,
                  {{"digest", state.program_digest.to_string()}});
    if (!fetch_in_flight) {
      ++stats_.program_fetches;
      TASKLETS_COUNT("broker.store.program_fetches", 1);
      out.send(state.consumer, proto::FetchProgram{state.program_digest});
    }
    return true;
  }
  return false;  // synthetic body: nothing content-addressed about it
}

bool Broker::try_memo_hit(TaskletId id, TaskletState& state, SimTime now,
                          proto::Outbox& out) {
  if (!state.spec.qoc.memoize || !state.program_digest.valid() ||
      !state.args_digest.valid()) {
    return false;
  }
  const store::MemoEntry* entry =
      memo_.lookup({state.program_digest, state.args_digest});
  if (entry == nullptr) {
    TASKLETS_COUNT("broker.store.memo_misses", 1);
    return false;
  }
  ++stats_.memo_hits;
  TASKLETS_COUNT("broker.store.memo_hits", 1);
  trace_instant(state, "memo_hit", id, now,
                {{"program", state.program_digest.to_string()},
                 {"provider", entry->provider.to_string()}});
  proto::TaskletReport report;
  report.id = id;
  report.job = state.spec.job;
  report.status = proto::TaskletStatus::kCompleted;
  report.result = entry->result;
  report.fuel_used = entry->fuel;
  report.instructions = entry->instructions;
  report.attempts = 0;  // the memo's defining property: no provider round trip
  report.executed_by = entry->provider;
  report.latency = now - state.submitted_at;
  // A memo hit is still a completion — keep the aggregate consistent with
  // the provider-executed path.
  ++stats_.tasklets_completed;
  TASKLETS_COUNT("broker.completed", 1);
  finish(id, state, std::move(report), out);
  return true;
}

proto::TaskletBody Broker::make_assign_body(const TaskletState& state,
                                            ProviderState& provider) {
  if (!state.program_digest.valid()) return state.spec.body;  // synthetic
  const std::vector<tvm::HostArg>* args = proto::body_args(state.spec.body);
  if (args == nullptr) return state.spec.body;
  if (config_.dedup_assign && provider.warm.contains(state.program_digest)) {
    ++stats_.assigns_by_digest;
    TASKLETS_COUNT("broker.store.assigns_by_digest", 1);
    std::size_t program_size = 0;
    if (const auto* vm = std::get_if<proto::VmBody>(&state.spec.body)) {
      program_size = vm->program.size();
    } else if (const Bytes* blob = blobs_.get(state.program_digest)) {
      program_size = blob->size();
    }
    if (program_size > 16) stats_.assign_bytes_saved += program_size - 16;
    return proto::DigestBody{state.program_digest, *args};
  }
  // Cold (or dedup off): ship the bytes inline and remember the provider now
  // holds them. If the assign is lost the warm belief is optimistic; the
  // provider then pulls via FetchProgram, and rejects if that fails too —
  // which clears the warm bit and forces the next attempt inline.
  if (const auto* vm = std::get_if<proto::VmBody>(&state.spec.body)) {
    mark_warm(provider, state.program_digest);
    return *vm;
  }
  if (const Bytes* blob = blobs_.get(state.program_digest)) {
    mark_warm(provider, state.program_digest);
    return proto::VmBody{*blob, *args};
  }
  // Pinned content should always be resident; fall back to digest-only and
  // let the provider's pull path (or its rejection) sort it out.
  return proto::DigestBody{state.program_digest, *args};
}

void Broker::mark_warm(ProviderState& provider, const store::Digest& digest) {
  if (provider.warm.contains(digest)) return;
  provider.warm.insert(digest);
  provider.warm_order.push_back(digest);
  while (provider.warm_order.size() > config_.warm_entries_per_provider) {
    provider.warm.erase(provider.warm_order.front());
    provider.warm_order.pop_front();
  }
}

void Broker::release_program_ref(TaskletState& state) {
  if (!state.program_ref) return;
  state.program_ref = false;
  blobs_.unref(state.program_digest);
}

void Broker::handle_fetch_program(NodeId from, const proto::FetchProgram& m,
                                  proto::Outbox& out) {
  const Bytes* blob = blobs_.get(m.program_digest);
  if (blob == nullptr) {
    // Unknown content (evicted, or the requester is confused): stay silent —
    // the provider's own retry budget concludes with a rejection, which
    // re-issues the attempt inline.
    return;
  }
  ++stats_.program_serves;
  TASKLETS_COUNT("broker.store.program_serves", 1);
  if (const auto it = providers_.find(from); it != providers_.end()) {
    mark_warm(it->second, m.program_digest);
  }
  out.send(from, proto::ProgramData{m.program_digest, *blob});
}

void Broker::handle_program_data(const proto::ProgramData& m, SimTime now,
                                 proto::Outbox& out) {
  // Verify content against its name before interning: a corrupted frame that
  // still decodes must not poison the store (every later assignment of this
  // digest would ship the wrong bytes).
  if (store::digest_bytes(m.program) != m.program_digest) {
    TASKLETS_LOG(kWarn, kLog) << "ProgramData digest mismatch for "
                              << m.program_digest.to_string() << "; dropped";
    return;
  }
  blobs_.put(m.program_digest, m.program);
  unpark_waiters(m.program_digest, /*deduped=*/false, now, out);
}

// --- DAG execution (r4) -----------------------------------------------------------

namespace {

// Binds a delegated upstream result into one argument slot. Synthetic bodies
// carry no argument vector — their edges are ordering-only.
void bind_body_arg(proto::TaskletBody& body, std::uint32_t slot,
                   const tvm::HostArg& value) {
  if (auto* vm = std::get_if<proto::VmBody>(&body)) {
    vm->args[slot] = value;
  } else if (auto* digest = std::get_if<proto::DigestBody>(&body)) {
    digest->args[slot] = value;
  }
}

}  // namespace

void Broker::dag_trace_instant(
    const DagState& dag, std::string name, SimTime now,
    std::vector<std::pair<std::string, std::string>> args) {
  if (config_.trace == nullptr || !dag.trace.active()) return;
  config_.trace->instant(dag.trace, std::move(name), this->id(), TaskletId{},
                         now, std::move(args));
}

void Broker::handle_submit_dag(NodeId from, const proto::SubmitDag& m,
                               SimTime now, proto::Outbox& out) {
  const DagId id = m.spec.id;
  if (const auto it = dags_.find(id); it != dags_.end()) {
    // SubmitDag is at-least-once from the consumer: drop retransmits of an
    // in-flight DAG, replay the retained terminal status for a concluded one.
    ++stats_.duplicate_dag_submits;
    TASKLETS_COUNT("broker.dag.duplicate_submits", 1);
    if (it->second.done && it->second.final_status.has_value()) {
      out.send(from, *it->second.final_status);
    }
    return;
  }
  ++stats_.dags_submitted;
  TASKLETS_COUNT("broker.dag.submitted", 1);
  auto topo = dag::validate(m.spec);
  if (!topo.is_ok()) {
    // Structurally invalid (cycle, bad slot binding, ...): terminally failed
    // before any node runs. Retain the status so retransmits replay it.
    TASKLETS_LOG(kWarn, kLog) << "rejecting dag " << id.to_string() << ": "
                              << topo.status().to_string();
    ++stats_.dags_failed;
    TASKLETS_COUNT("broker.dag.failed", 1);
    DagState& dag = dags_[id];
    dag.consumer = from;
    dag.submitted_at = now;
    dag.failed = true;
    dag.done = true;
    proto::DagStatus status;
    status.dag = id;
    status.job = m.spec.job;
    status.status = proto::TaskletStatus::kFailed;
    status.nodes.assign(m.spec.nodes.size(),
                        proto::DagNodeDisposition::kPending);
    dag.final_status = status;
    out.send(from, std::move(status));
    return;
  }
  DagState& dag = dags_[id];
  dag.spec = m.spec;
  dag.consumer = from;
  dag.trace = m.trace;
  dag.submitted_at = now;
  dag.topo = std::move(topo).value();
  dag.merkle = dag::merkle_digests(dag.spec, dag.topo);
  dag.programs.reserve(dag.spec.nodes.size());
  for (const auto& node : dag.spec.nodes) {
    dag.programs.push_back(dag::node_program_digest(node.body));
  }
  dag.outputs = dag::output_nodes(dag.spec);
  dag.nodes.assign(dag.spec.nodes.size(), DagNodeRuntime{});

  // Demand pass, outputs downward (reverse topo order): a Merkle memo hit
  // satisfies a node from the table and stops the descent — its entire
  // upstream cone is never demanded. This is what turns the single-tasklet
  // memo table into whole-subtree memoization.
  std::vector<char> needed(dag.spec.nodes.size(), 0);
  for (const std::uint32_t output : dag.outputs) needed[output] = 1;
  std::vector<std::uint32_t> memo_settled;
  for (auto it = dag.topo.rbegin(); it != dag.topo.rend(); ++it) {
    const std::uint32_t node = *it;
    if (needed[node] == 0) continue;
    dag.nodes[node].demanded = true;
    if (dag.spec.qoc.memoize) {
      const store::MemoEntry* entry =
          memo_.lookup({dag.programs[node], dag.merkle[node]});
      if (entry != nullptr) {
        settle_dag_node_from_memo(id, dag, node, *entry, now);
        memo_settled.push_back(node);
        continue;  // the subtree behind this node stays undemanded
      }
      TASKLETS_COUNT("broker.store.memo_misses", 1);
    }
    for (const dag::DagEdge& edge : dag.spec.nodes[node].inputs) {
      needed[edge.from_node] = 1;
    }
  }

  // Forward pass: demanded non-memo nodes wait on all their edges; memo
  // results resolve their dependents' slots immediately.
  for (const std::uint32_t node : dag.topo) {
    DagNodeRuntime& rt = dag.nodes[node];
    if (!rt.demanded || rt.report.has_value()) continue;
    rt.waiting_inputs =
        static_cast<std::uint32_t>(dag.spec.nodes[node].inputs.size());
    dag.outstanding += 1;
  }
  dag_trace_instant(dag, "dag_submit", now,
                    {{"nodes", std::to_string(dag.spec.nodes.size())},
                     {"outstanding", std::to_string(dag.outstanding)}});
  for (const std::uint32_t node : memo_settled) {
    out.send(dag.consumer,
             proto::DagNodeResult{id, node, *dag.nodes[node].report});
    for (const std::uint32_t ready :
         bind_dag_result(dag, node, dag.nodes[node].report->result)) {
      release_dag_node(id, dag, ready, now, out);
      if (dag.done) return;
    }
  }
  if (dag.outstanding == 0) {
    // Every output was answered from the memo: the whole DAG concludes
    // without a single provider attempt.
    finish_dag(id, dag, now, out);
    return;
  }
  // Sources (no inputs) are ready immediately.
  for (const std::uint32_t node : dag.topo) {
    const DagNodeRuntime& rt = dag.nodes[node];
    if (rt.demanded && !rt.report.has_value() && !rt.tasklet.valid() &&
        rt.waiting_inputs == 0) {
      release_dag_node(id, dag, node, now, out);
      if (dag.done) return;
    }
  }
}

void Broker::settle_dag_node_from_memo(DagId /*dag_id*/, DagState& dag,
                                       std::uint32_t node,
                                       const store::MemoEntry& entry,
                                       SimTime now) {
  DagNodeRuntime& rt = dag.nodes[node];
  rt.disposition = proto::DagNodeDisposition::kMemo;
  ++stats_.memo_hits;
  TASKLETS_COUNT("broker.store.memo_hits", 1);
  ++stats_.dag_nodes_memo;
  TASKLETS_COUNT("broker.dag.nodes_memo", 1);
  proto::TaskletReport report;
  report.job = dag.spec.job;
  report.status = proto::TaskletStatus::kCompleted;
  report.result = entry.result;
  report.fuel_used = entry.fuel;
  report.instructions = entry.instructions;
  report.attempts = 0;  // the defining property of a memo completion
  report.executed_by = entry.provider;
  report.latency = 0;
  rt.report = std::move(report);
  dag_trace_instant(dag, "dag_memo_hit", now,
                    {{"node", std::to_string(node)},
                     {"merkle", dag.merkle[node].to_string()}});
}

std::vector<std::uint32_t> Broker::bind_dag_result(DagState& dag,
                                                   std::uint32_t node,
                                                   const tvm::HostArg& result) {
  std::vector<std::uint32_t> ready;
  for (std::size_t j = 0; j < dag.spec.nodes.size(); ++j) {
    DagNodeRuntime& rt = dag.nodes[j];
    if (!rt.demanded || rt.report.has_value() || rt.tasklet.valid()) continue;
    for (const dag::DagEdge& edge : dag.spec.nodes[j].inputs) {
      if (edge.from_node != node) continue;
      bind_body_arg(dag.spec.nodes[j].body, edge.arg_slot, result);
      ++stats_.dag_results_delegated;
      TASKLETS_COUNT("broker.dag.results_delegated", 1);
      if (rt.waiting_inputs > 0 && --rt.waiting_inputs == 0) {
        ready.push_back(static_cast<std::uint32_t>(j));
      }
    }
  }
  return ready;
}

void Broker::release_dag_node(DagId dag_id, DagState& dag, std::uint32_t node,
                              SimTime now, proto::Outbox& out) {
  DagNodeRuntime& rt = dag.nodes[node];
  const TaskletId tid{kDagNodeIdBit | next_dag_node_seq_++};
  rt.tasklet = tid;
  ++stats_.tasklets_submitted;
  TASKLETS_COUNT("broker.submitted", 1);
  TaskletState& state = tasklets_[tid];
  state.spec.id = tid;
  state.spec.job = dag.spec.job;
  state.spec.body = dag.spec.nodes[node].body;  // delegated inputs bound in
  state.spec.qoc = dag.spec.qoc;
  state.spec.origin_locality = dag.spec.origin_locality;
  state.consumer = dag.consumer;
  state.trace = dag.trace;  // node spans land in the DAG's trace
  state.submitted_at = now;
  state.replicas_pending =
      std::max<std::uint32_t>(1, dag.spec.qoc.redundancy);
  state.dag = dag_id;
  state.dag_node = node;
  // Merkle identity: memo entries for this node key (program digest, Merkle
  // digest), so a future resubmission of the same subtree short-circuits at
  // submit time. resolve_body preserves this pre-seeded args digest.
  state.program_digest = dag.programs[node];
  state.args_digest = dag.merkle[node];
  dag_trace_instant(dag, "dag_node_release", now,
                    {{"node", std::to_string(node)},
                     {"tasklet", tid.to_string()}});
  // The same gauntlet a flat submission runs: admission control, deadline,
  // memo probe / program interning, then placement.
  if (admission_rejects(tid, state, now, out)) return;
  if (state.spec.qoc.deadline > 0) {
    out.arm_timer(kDeadlineTimerBit | tid.value(), state.spec.qoc.deadline);
  }
  if (std::holds_alternative<proto::SyntheticBody>(state.spec.body)) {
    // Synthetic bodies skip resolve_body's content machinery, but with a
    // pseudo program digest they still participate in Merkle memoization.
    if (try_memo_hit(tid, state, now, out)) return;
  } else if (resolve_body(tid, state, now, out)) {
    return;
  }
  while (state.replicas_pending > 0 && try_place_replica(tid, now, out).valid()) {
  }
  for (std::uint32_t i = 0; i < tasklets_.at(tid).replicas_pending; ++i) {
    enqueue_replica(tid);
  }
}

void Broker::on_dag_node_done(TaskletState& state,
                              const proto::TaskletReport& report, SimTime now,
                              proto::Outbox& out) {
  const auto it = dags_.find(state.dag);
  if (it == dags_.end() || it->second.done) return;
  const DagId dag_id = state.dag;
  DagState& dag = it->second;
  DagNodeRuntime& rt = dag.nodes[state.dag_node];
  if (rt.report.has_value()) return;
  rt.report = report;
  if (dag.outstanding > 0) dag.outstanding -= 1;
  if (report.status != proto::TaskletStatus::kCompleted) {
    // Per-node failure fails the whole DAG: downstream nodes can never get
    // their inputs. Nodes already in flight keep running — their verified
    // results still land in the memo table, so a resubmission after the
    // fault reuses everything that did finish.
    rt.disposition = proto::DagNodeDisposition::kFailed;
    dag.failed = true;
    out.send(dag.consumer,
             proto::DagNodeResult{dag_id, state.dag_node, *rt.report});
    dag_trace_instant(dag, "dag_node_failed", now,
                      {{"node", std::to_string(state.dag_node)},
                       {"status", std::string(proto::to_string(report.status))}});
    finish_dag(dag_id, dag, now, out);
    return;
  }
  rt.disposition = report.attempts == 0 ? proto::DagNodeDisposition::kMemo
                                        : proto::DagNodeDisposition::kExecuted;
  if (rt.disposition == proto::DagNodeDisposition::kMemo) {
    ++stats_.dag_nodes_memo;
    TASKLETS_COUNT("broker.dag.nodes_memo", 1);
  } else {
    ++stats_.dag_nodes_executed;
    TASKLETS_COUNT("broker.dag.nodes_executed", 1);
  }
  // Intern the delegated result blob: downstream consumers (and the ops
  // plane) can pull it content-addressed over the same FetchProgram /
  // ProgramData path program bytes ride (r3).
  {
    ByteWriter w;
    tvm::encode_arg(w, report.result);
    Bytes blob = std::move(w).take();
    const std::size_t blob_size = blob.size();
    blobs_.put(store::digest_bytes(blob), std::move(blob));
    stats_.dag_result_bytes_interned += blob_size;
  }
  out.send(dag.consumer,
           proto::DagNodeResult{dag_id, state.dag_node, *rt.report});
  dag_trace_instant(dag, "dag_node_done", now,
                    {{"node", std::to_string(state.dag_node)},
                     {"disposition", std::string(proto::to_string(rt.disposition))}});
  // Output delegation: feed the result straight into dependents' argument
  // slots and release whichever became fully resolved.
  for (const std::uint32_t ready :
       bind_dag_result(dag, state.dag_node, report.result)) {
    release_dag_node(dag_id, dag, ready, now, out);
    if (dag.done) return;
  }
  if (dag.outstanding == 0) finish_dag(dag_id, dag, now, out);
}

void Broker::finish_dag(DagId id, DagState& dag, SimTime now,
                        proto::Outbox& out) {
  dag.done = true;
  proto::DagStatus status;
  status.dag = id;
  status.job = dag.spec.job;
  status.status = proto::TaskletStatus::kCompleted;
  status.nodes.reserve(dag.nodes.size());
  for (DagNodeRuntime& rt : dag.nodes) {
    if (!rt.demanded) {
      rt.disposition = proto::DagNodeDisposition::kSkipped;
      ++stats_.dag_nodes_skipped;
      TASKLETS_COUNT("broker.dag.nodes_skipped", 1);
    }
    status.nodes.push_back(rt.disposition);
  }
  if (dag.failed) {
    // Propagate the most specific failure: the first failed node's status.
    status.status = proto::TaskletStatus::kFailed;
    for (const DagNodeRuntime& rt : dag.nodes) {
      if (rt.disposition == proto::DagNodeDisposition::kFailed &&
          rt.report.has_value()) {
        status.status = rt.report->status;
        break;
      }
    }
  }
  status.outputs.reserve(dag.outputs.size());
  for (const std::uint32_t output : dag.outputs) {
    if (dag.nodes[output].report.has_value()) {
      status.outputs.push_back(*dag.nodes[output].report);
    } else {
      proto::TaskletReport missing;
      missing.job = dag.spec.job;
      missing.status = status.status == proto::TaskletStatus::kCompleted
                           ? proto::TaskletStatus::kFailed
                           : status.status;
      missing.error = "dag aborted before this output completed";
      status.outputs.push_back(std::move(missing));
    }
  }
  status.latency = now - dag.submitted_at;
  if (dag.failed) {
    ++stats_.dags_failed;
    TASKLETS_COUNT("broker.dag.failed", 1);
  } else {
    ++stats_.dags_completed;
    TASKLETS_COUNT("broker.dag.completed", 1);
  }
  dag_trace_instant(dag, "dag_done", now,
                    {{"status", std::string(proto::to_string(status.status))},
                     {"latency", format_duration(status.latency)}});
  dag.final_status = status;
  out.send(dag.consumer, std::move(status));
}

void Broker::unpark_waiters(const store::Digest& digest, bool deduped,
                            SimTime now, proto::Outbox& out) {
  const auto it = awaiting_program_.find(digest);
  if (it == awaiting_program_.end()) return;  // duplicate / unsolicited
  const std::vector<TaskletId> waiting = std::move(it->second);
  awaiting_program_.erase(it);
  for (const TaskletId id : waiting) {
    const auto tit = tasklets_.find(id);
    if (tit == tasklets_.end()) continue;
    TaskletState& state = tit->second;
    if (state.done || !state.awaiting_program) continue;
    state.awaiting_program = false;
    blobs_.ref(state.program_digest);
    state.program_ref = true;
    if (deduped) {
      ++stats_.program_dedup_hits;
      TASKLETS_COUNT("broker.store.program_dedup_hits", 1);
    }
    trace_instant(state, "program_ready", id, now);
    while (state.replicas_pending > 0 &&
           try_place_replica(id, now, out).valid()) {
    }
    for (std::uint32_t i = 0; i < tasklets_.at(id).replicas_pending; ++i) {
      enqueue_replica(id);
    }
  }
}

}  // namespace tasklets::broker

// The Tasklet broker: the mediator between resource consumers and providers.
//
// Responsibilities (mirroring the paper's architecture):
//   * provider registry with capability records, liveness via heartbeats,
//     and observed-reliability tracking,
//   * matchmaking: QoC filtering + pluggable scheduling policy,
//   * tasklet lifecycle: queueing under contention, redundant replica
//     issue to distinct providers, majority voting over replica results,
//     re-issue on provider loss, deadline enforcement,
//   * result delivery to consumers with provenance (who executed, attempts,
//     fuel, latency).
//
// The broker is a pure protocol actor (proto/actor.hpp): deterministic given
// its inbox order, which both runtimes exploit.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "broker/pool_stats.hpp"
#include "broker/scheduling.hpp"
#include "broker/speed_estimator.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/trace.hpp"
#include "proto/actor.hpp"
#include "store/blob_store.hpp"
#include "store/memo.hpp"

namespace tasklets::broker {

struct BrokerConfig {
  // Providers are expected to heartbeat at this cadence; the broker declares
  // a provider lost after `liveness_multiplier` missed beats.
  SimTime heartbeat_interval = 1 * kSecond;
  double liveness_multiplier = 3.5;
  // Cadence of the broker's liveness / deadline scan.
  SimTime scan_interval = 500 * kMillisecond;
  // A tasklet whose QoC constraints no registered provider can satisfy is
  // failed as unschedulable only after this grace period — providers may
  // still be registering (submission and registration race at startup).
  SimTime unschedulable_grace = 2 * kSecond;
  // Default per-attempt fuel limit handed to providers (0 = provider default).
  std::uint64_t default_max_fuel = 0;
  // Immediate provider rejections (no slot / offline) are re-placed under
  // this separate budget: unlike losses they cost nothing but a round trip,
  // so they should not burn the QoC re-issue budget.
  std::uint32_t max_rejections = 64;
  // EWMA factor for observed provider reliability.
  double reliability_alpha = 0.2;
  // How long a gracefully-draining provider gets to checkpoint and report
  // its in-flight work before the broker gives up and re-issues it.
  SimTime drain_grace = 10 * kSecond;
  // Straggler mitigation (MapReduce-style backup tasks): when > 0, an
  // attempt of a non-redundant tasklet that has been running longer than
  // this is shadowed by one speculative replica on a different provider;
  // the first result wins, the loser is discarded. 0 disables speculation.
  SimTime speculative_after = 0;
  // Lost-message recovery: when > 0, an attempt with no result after this
  // long is fenced (its provider slot freed, late results ignored) and
  // re-issued under the QoC re-issue budget. Covers dropped AssignTasklet /
  // AttemptResult frames, which heartbeat liveness cannot see. 0 disables.
  SimTime attempt_timeout = 0;
  // Per-provider effective-speed estimation (EWMA of fuel/s per completed
  // attempt). Always on — it is passive measurement; only the adaptive
  // policy and the defenses below consume it.
  SpeedEstimatorConfig speed_estimator;
  // Quantile-based straggler defense: when `straggler_multiplier` > 0, an
  // in-flight attempt older than multiplier × the `straggler_quantile` of
  // completed-attempt durations gets one speculative backup; past twice
  // that bound it is fenced (late result ignored) and reassigned. Unlike
  // `speculative_after` / `attempt_timeout` this bound adapts to what the
  // pool actually needs, so it stays quiet on a uniformly slow pool and
  // fires early on a fast one. Engages only after `straggler_min_samples`
  // completions — before that the duration distribution is too thin.
  double straggler_multiplier = 0.0;
  double straggler_quantile = 0.95;
  std::size_t straggler_min_samples = 20;
  // Deadline admission control: reject a submission outright (as
  // unschedulable) when its QoC deadline cannot be met even by the fastest
  // admissible provider at measured speed. Only synthetic bodies carry a
  // known fuel requirement, so only they are ever rejected. `safety`
  // inflates the predicted runtime to cover queueing and transfer.
  bool admission_control = false;
  double admission_safety = 1.25;
  std::uint64_t rng_seed = 0x7A5CB0A7;
  // Span collector; nullptr disables tracing at the broker.
  TraceStore* trace = nullptr;

  // --- content-addressed store (protocol r3) ---------------------------------
  // Send digest-only AssignTasklet bodies to providers whose program cache
  // is known-warm (they pull the bytes on a miss). Off forces every assign
  // inline, as in r2.
  bool dedup_assign = true;
  // Byte budget for interned program blobs. Blobs referenced by live
  // tasklets are pinned and never evicted, even over budget.
  std::size_t blob_budget_bytes = 64u << 20;
  // Result memo table capacity ((program, args) entries).
  std::size_t memo_entries = 4096;
  // Per-provider warm-digest history the affinity scheduling tracks.
  std::size_t warm_entries_per_provider = 256;
  // A DigestBody submission whose program cannot be fetched from its
  // consumer within this grace fails kExhausted.
  SimTime program_fetch_grace = 10 * kSecond;

  // --- swarm scale (r5) -------------------------------------------------------
  // Concluded tasklets kept for duplicate-submit replay. 0 keeps every
  // terminal record forever (the historical behaviour); a bound evicts the
  // oldest terminal records FIFO, trading replay coverage for bounded
  // memory — million-tasklet benches set this. DAG-bound node tasklets are
  // never evicted this way (the DAG machinery owns their lifetime).
  std::size_t terminal_retention = 0;
};

// Aggregate counters for benches and monitoring.
struct BrokerStats {
  std::uint64_t tasklets_submitted = 0;
  std::uint64_t tasklets_completed = 0;
  std::uint64_t tasklets_failed = 0;       // deterministic traps
  std::uint64_t tasklets_exhausted = 0;    // re-issue budget spent
  std::uint64_t tasklets_deadline = 0;
  std::uint64_t tasklets_unschedulable = 0;
  std::uint64_t attempts_issued = 0;
  std::uint64_t attempts_ok = 0;
  std::uint64_t attempts_lost = 0;
  std::uint64_t reissues = 0;
  std::uint64_t votes_overruled = 0;  // replicas disagreeing with majority
  std::uint64_t providers_expired = 0;
  std::uint64_t max_queue_length = 0;
  std::uint64_t speculations = 0;       // backup attempts issued
  std::uint64_t speculation_wins = 0;   // tasklets whose backup finished first
  std::uint64_t migrations = 0;         // suspended attempts re-placed
  std::uint64_t duplicate_submits = 0;  // SubmitTasklet retransmits fenced
  std::uint64_t duplicate_results = 0;  // late/fenced AttemptResults ignored
  std::uint64_t attempts_timed_out = 0; // attempts fenced by attempt_timeout
  std::uint64_t straggler_reassigns = 0;  // attempts fenced by the straggler bound
  std::uint64_t admission_rejected = 0;   // submits rejected as deadline-infeasible
  // Content-addressed store (r3).
  std::uint64_t memo_hits = 0;          // submissions answered from the memo
  std::uint64_t memo_inserts = 0;       // verified results stored
  std::uint64_t program_dedup_hits = 0; // DigestBody submits resolved locally
  std::uint64_t program_fetches = 0;    // FetchProgram sent to consumers
  std::uint64_t program_serves = 0;     // ProgramData served to providers
  std::uint64_t assigns_by_digest = 0;  // digest-only assignments sent
  std::uint64_t assign_bytes_saved = 0; // program bytes not re-shipped
  // Tasklet DAGs (r4).
  std::uint64_t dags_submitted = 0;
  std::uint64_t dags_completed = 0;
  std::uint64_t dags_failed = 0;            // incl. invalid specs
  std::uint64_t duplicate_dag_submits = 0;  // SubmitDag retransmits fenced
  std::uint64_t dag_nodes_executed = 0;     // completed via provider attempts
  std::uint64_t dag_nodes_memo = 0;         // Merkle subtree memo hits
  std::uint64_t dag_nodes_skipped = 0;      // upstream cones never demanded
  std::uint64_t dag_results_delegated = 0;  // results bound broker-side
  std::uint64_t dag_result_bytes_interned = 0;  // result blobs put in the store
};

class Broker final : public proto::Actor {
 public:
  Broker(NodeId id, std::unique_ptr<Scheduler> scheduler,
         BrokerConfig config = {});

  void on_start(SimTime now, proto::Outbox& out) override;
  void on_message(const proto::Envelope& envelope, SimTime now,
                  proto::Outbox& out) override;
  void on_timer(std::uint64_t timer_id, SimTime now, proto::Outbox& out) override;
  // Batched-tick hot path: while a runtime-delivered burst is open, queue
  // drains requested by individual handlers are deferred and coalesced into
  // one placement pass at on_batch_end.
  void on_batch_begin(SimTime now) override;
  void on_batch_end(SimTime now, proto::Outbox& out) override;

  [[nodiscard]] const BrokerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t queue_length() const noexcept { return pending_count_; }
  [[nodiscard]] std::size_t provider_count() const noexcept;
  [[nodiscard]] std::size_t online_provider_count() const noexcept;
  [[nodiscard]] const Scheduler& scheduler() const noexcept { return *scheduler_; }

  // Per-provider completed-attempt counts (utilisation / fairness metrics).
  [[nodiscard]] std::vector<std::pair<NodeId, std::uint64_t>> provider_completions() const;

  // Ops-plane introspection: a copy of every *online* provider's view with
  // busy_slots refreshed (id-sorted), and the pool aggregate over it. Both
  // are what the admin endpoint's `providers` command and the heterogeneity
  // gauges render.
  [[nodiscard]] std::vector<ProviderView> provider_views() const;
  [[nodiscard]] PoolStats pool_stats() const;

  // Speed-estimator introspection (tests, benches): the EWMA effective
  // fuel/s the broker measured for `provider` (0 if unknown / no samples)
  // and how many samples back it.
  [[nodiscard]] double measured_speed(NodeId provider) const noexcept;
  [[nodiscard]] std::uint64_t speed_samples(NodeId provider) const noexcept;
  // Completed-attempt durations feeding the straggler bound.
  [[nodiscard]] std::size_t completion_samples() const noexcept {
    return completions_.count();
  }

  // Content store introspection (tests, benches).
  [[nodiscard]] const store::BlobStore& blob_store() const noexcept {
    return blobs_;
  }
  [[nodiscard]] const store::MemoTable& memo_table() const noexcept {
    return memo_;
  }

 private:
  struct ProviderState {
    ProviderView view;
    SimTime last_heartbeat = 0;
    bool online = false;
    bool draining = false;       // graceful drain pending
    SimTime draining_since = 0;  // when the drain began
    // Registration epoch last acked (see proto::RegisterProvider). A
    // re-registration with the same non-zero incarnation is a retransmit,
    // not a restart.
    std::uint64_t incarnation = 0;
    std::unordered_set<AttemptId> inflight;
    // Program digests this provider's cache is believed to hold (from
    // inline assignments and served fetches); FIFO-capped. Cleared when a
    // new incarnation registers — the cache died with the old process.
    std::unordered_set<store::Digest> warm;
    std::deque<store::Digest> warm_order;
    // Measured effective speed (EWMA over completed attempts). Kept across
    // re-registrations — the device restarted, but it is the same hardware.
    SpeedEstimator speed;
    // Lazily-bound per-provider metric handles: registry entries are
    // immortal, so caching the references here keeps the "broker.assigned.*"
    // / "broker.speed.*" name formatting off the per-attempt hot path.
    metrics::Counter* assigned_counter = nullptr;
    metrics::Gauge* speed_gauge = nullptr;
  };

  struct AttemptState {
    NodeId provider;
    SimTime issued_at = 0;
    // Tracing: this attempt's span id; the AssignTasklet's trace parent.
    std::uint64_t span = 0;
  };

  struct VoteEntry {
    tvm::HostArg result;
    std::uint64_t fuel = 0;
    std::uint64_t instructions = 0;
    std::uint32_t count = 0;
    NodeId first_provider;
  };

  struct TaskletState {
    proto::TaskletSpec spec;
    NodeId consumer;
    // Tracing context from the submit (trace id + consumer root span).
    TraceContext trace;
    SimTime submitted_at = 0;
    std::unordered_map<AttemptId, AttemptState> attempts;
    // Every provider that ever received an attempt for this tasklet:
    // soft-avoided on re-issue so retries and vote tie-breakers land on
    // fresh providers when any exist.
    std::unordered_set<NodeId> used_providers;
    std::vector<VoteEntry> votes;
    std::uint32_t attempts_total = 0;   // every attempt ever issued
    std::uint32_t replicas_pending = 0; // replicas still to be placed
    std::uint32_t reissues_used = 0;
    std::uint32_t rejections = 0;
    std::uint64_t fuel_total = 0;
    bool done = false;
    bool speculated = false;       // a backup replica was issued
    AttemptId speculative_attempt; // the backup (invalid until speculated)
    // Latest migration checkpoint: non-empty after a provider drained this
    // tasklet's execution; new attempts resume from it.
    Bytes resume_snapshot;
    // Content digests of the body (invalid for synthetic bodies). Computed
    // once at submission; key the blob pin, the memo table and the
    // warm-provider affinity signal.
    store::Digest program_digest;
    store::Digest args_digest;
    // The tasklet holds a pin on blobs_[program_digest] until it finishes.
    bool program_ref = false;
    // DigestBody submission whose program bytes are still being pulled from
    // the consumer; replicas are placed once ProgramData lands.
    bool awaiting_program = false;
    SimTime fetch_started = 0;
    // The terminal report, retained so a duplicate SubmitTasklet arriving
    // after conclusion replays it instead of re-running the tasklet (the
    // consumer's resubmission loop makes submission at-least-once).
    std::optional<proto::TaskletReport> final_report;
    // Set for broker-internal DAG node executions (r4): conclusions are
    // routed to the DAG executor instead of a consumer TaskletDone.
    DagId dag;
    std::uint32_t dag_node = 0;
  };

  // Per-node runtime state of an in-flight DAG.
  struct DagNodeRuntime {
    proto::DagNodeDisposition disposition = proto::DagNodeDisposition::kPending;
    bool demanded = false;          // some output transitively needs this node
    std::uint32_t waiting_inputs = 0;  // edges whose producer is not terminal
    TaskletId tasklet;              // internal tasklet id once released
    std::optional<proto::TaskletReport> report;
  };

  struct DagState {
    dag::DagSpec spec;              // bodies mutate as results are bound in
    NodeId consumer;
    TraceContext trace;
    SimTime submitted_at = 0;
    std::vector<std::uint32_t> topo;
    std::vector<store::Digest> programs;  // per-node program content digests
    std::vector<store::Digest> merkle;    // per-node Merkle digests
    std::vector<std::uint32_t> outputs;
    std::vector<DagNodeRuntime> nodes;
    std::uint32_t outstanding = 0;  // demanded non-memo nodes not yet terminal
    bool failed = false;
    bool done = false;
    // Retained terminal status: duplicate SubmitDag frames replay it.
    std::optional<proto::DagStatus> final_status;
  };

  static constexpr std::uint64_t kScanTimer = 1;
  static constexpr std::uint64_t kDeadlineTimerBit = 1ULL << 63;
  // Internal DAG node tasklets live in their own id namespace so they can
  // never collide with consumer-chosen tasklet ids (and stay clear of the
  // deadline-timer bit above).
  static constexpr std::uint64_t kDagNodeIdBit = 1ULL << 62;

  // --- message handlers -------------------------------------------------------
  void handle_register(NodeId from, const proto::RegisterProvider& m, SimTime now,
                       proto::Outbox& out);
  void handle_deregister(NodeId from, const proto::DeregisterProvider& m,
                         SimTime now, proto::Outbox& out);
  void handle_heartbeat(NodeId from, const proto::Heartbeat& m, SimTime now,
                        proto::Outbox& out);
  void handle_submit(NodeId from, const proto::SubmitTasklet& m, SimTime now,
                     proto::Outbox& out);
  void handle_cancel(const proto::CancelTasklet& m, SimTime now);
  void handle_attempt_result(NodeId from, const proto::AttemptResult& m,
                             SimTime now, proto::Outbox& out);
  // Provider pulling program bytes for a digest-only assignment.
  void handle_fetch_program(NodeId from, const proto::FetchProgram& m,
                            proto::Outbox& out);
  // Consumer answering our FetchProgram for a DigestBody submission.
  void handle_program_data(const proto::ProgramData& m, SimTime now,
                           proto::Outbox& out);

  // --- DAG execution (r4) -----------------------------------------------------
  // Validates, runs the Merkle demand pass (memo hits short-circuit whole
  // subtrees) and releases the initially-ready nodes.
  void handle_submit_dag(NodeId from, const proto::SubmitDag& m, SimTime now,
                         proto::Outbox& out);
  // Turns one demanded, fully-resolved node into an internal tasklet and
  // pushes it through the ordinary submission machinery (admission control,
  // deadline timer, memo probe, placement).
  void release_dag_node(DagId dag_id, DagState& dag, std::uint32_t node,
                        SimTime now, proto::Outbox& out);
  // finish() calls this for dag-bound tasklets instead of TaskletDone:
  // records the node's fate, delegates the result into dependents' argument
  // slots, releases newly-ready nodes and concludes the DAG when possible.
  void on_dag_node_done(TaskletState& state, const proto::TaskletReport& report,
                        SimTime now, proto::Outbox& out);
  // Marks a demanded node terminal without execution (demand-pass memo hit).
  void settle_dag_node_from_memo(DagId dag_id, DagState& dag, std::uint32_t node,
                                 const store::MemoEntry& entry, SimTime now);
  // Binds `result` into every demanded dependent of `node`; returns the
  // dependents that became ready.
  std::vector<std::uint32_t> bind_dag_result(DagState& dag, std::uint32_t node,
                                             const tvm::HostArg& result);
  void finish_dag(DagId id, DagState& dag, SimTime now, proto::Outbox& out);
  void dag_trace_instant(const DagState& dag, std::string name, SimTime now,
                         std::vector<std::pair<std::string, std::string>> args = {});

  // --- scheduling ---------------------------------------------------------------
  // Providers eligible for one more replica of `state` right now.
  [[nodiscard]] std::vector<ProviderView> eligible_providers(
      const TaskletState& state) const;
  // True if some registered provider could *ever* satisfy the QoC filter
  // (ignoring load/liveness) — otherwise the tasklet is unschedulable.
  [[nodiscard]] bool satisfiable(const TaskletState& state) const;
  [[nodiscard]] static bool qoc_admits(const TaskletState& state,
                                       const proto::Capability& capability);
  // Tries to place one replica; returns the new attempt id (invalid id on
  // failure: no eligible provider or the policy refused).
  AttemptId try_place_replica(TaskletId id, SimTime now, proto::Outbox& out);
  // Commits one placement decision: all the bookkeeping (attempt record,
  // slot claim, spans, AssignTasklet send) after a provider was chosen.
  AttemptId issue_attempt(TaskletId id, TaskletState& state, NodeId choice,
                          SimTime now, proto::Outbox& out);
  // Places queued replicas while capacity lasts.
  void drain_queue(SimTime now, proto::Outbox& out);
  // Deferred drain: inside a batch the request is latched and served once
  // at on_batch_end; outside a batch it drains immediately.
  void request_drain(SimTime now, proto::Outbox& out);
  // Batched fast path of drain_queue: snapshots the free-slot pool once,
  // collects the FIFO prefix of shape-neutral queued tasklets and places
  // them with one Scheduler::pick_batch call instead of one full
  // eligible-set rebuild per tasklet.
  void drain_queue_batched(SimTime now, proto::Outbox& out);
  // True when a queued tasklet's placement depends only on the pool, not on
  // per-spec state — the precondition for joining a batched placement pass.
  [[nodiscard]] bool batchable_shape(const TaskletState& state) const;
  void enqueue_replica(TaskletId id);

  // --- lifecycle ------------------------------------------------------------------
  void on_provider_lost(NodeId provider, SimTime now, proto::Outbox& out);
  void record_vote(TaskletState& state, const proto::AttemptOutcome& outcome,
                   NodeId provider);
  // Checks whether voting has concluded; completes the tasklet if so.
  void maybe_conclude(TaskletId id, TaskletState& state, SimTime now,
                      proto::Outbox& out);
  void fail_tasklet(TaskletId id, TaskletState& state, proto::TaskletStatus status,
                    std::string error, SimTime now, proto::Outbox& out);
  void complete_tasklet(TaskletId id, TaskletState& state, const VoteEntry& winner,
                        SimTime now, proto::Outbox& out);
  void finish(TaskletId id, TaskletState& state, proto::TaskletReport report,
              proto::Outbox& out);
  // Shared lost-attempt recovery: burn one re-issue if the budget allows,
  // else fail kExhausted once nothing else is outstanding.
  void reissue_or_exhaust(TaskletId id, TaskletState& state, SimTime now,
                          proto::Outbox& out);
  // Measurement half of the feedback loop: fold one completed attempt
  // (fuel over elapsed) into the provider's speed estimate and the
  // pool-wide completion-duration distribution.
  void record_speed_sample(NodeId provider, std::uint64_t fuel, SimTime elapsed);
  // Straggler defense (scan-timer): speculate on attempts past the
  // quantile bound, fence + reassign those past twice the bound.
  void defend_stragglers(SimTime now, proto::Outbox& out);
  // Pool signals (scan-timer): recompute the heterogeneity score policies
  // see in SchedulingContext and publish the pool/health gauges.
  void refresh_pool_signals();
  // Deadline admission control; true when the submit was rejected.
  bool admission_rejects(TaskletId id, TaskletState& state, SimTime now,
                         proto::Outbox& out);

  [[nodiscard]] std::uint32_t majority_threshold(const TaskletState& state) const;

  // --- content store (r3) -----------------------------------------------------
  // Computes digests, interns/pins program bytes, answers from the memo
  // table. Returns true if the submission concluded (memo hit) or parked
  // (program fetch pending) — i.e. no replicas should be placed yet.
  bool resolve_body(TaskletId id, TaskletState& state, SimTime now,
                    proto::Outbox& out);
  // Builds the assignment body for one attempt: digest-only for warm
  // providers when dedup_assign allows, inline otherwise (marking the
  // provider warm).
  [[nodiscard]] proto::TaskletBody make_assign_body(const TaskletState& state,
                                                    ProviderState& provider);
  void mark_warm(ProviderState& provider, const store::Digest& digest);
  void release_program_ref(TaskletState& state);
  // Answers a repeat submission from the memo table; true on a hit.
  bool try_memo_hit(TaskletId id, TaskletState& state, SimTime now,
                    proto::Outbox& out);
  // Releases tasklets parked on `digest` once its bytes are resident: binds
  // the pin and places replicas. `deduped` marks the waiters as dedup hits
  // (the blob arrived via another submission's inline bytes, so these
  // submissions never re-shipped the program).
  void unpark_waiters(const store::Digest& digest, bool deduped, SimTime now,
                      proto::Outbox& out);

  // --- tracing helpers (no-ops when config_.trace is null or the submit
  // carried no context) -------------------------------------------------------
  void trace_instant(const TaskletState& state, std::string name, TaskletId id,
                     SimTime now,
                     std::vector<std::pair<std::string, std::string>> args = {});
  // Closes an attempt's complete span (issue -> result/fence). No-op for an
  // already-closed attempt (span id 0).
  void end_attempt_span(const TaskletState& state, TaskletId id,
                        const AttemptState& attempt, SimTime now,
                        std::string_view status);
  // At conclusion (finish / cancel): closes still-outstanding attempt spans
  // as "abandoned" and, for tasklets that never reached placement, emits the
  // queue span so their wait is attributed rather than undercounted.
  void close_open_spans(TaskletState& state, TaskletId id, SimTime now);

  std::unique_ptr<Scheduler> scheduler_;
  BrokerConfig config_;
  BrokerStats stats_;
  Rng rng_;
  IdGenerator<AttemptId> attempt_ids_;
  std::unordered_map<NodeId, ProviderState> providers_;
  std::unordered_map<TaskletId, TaskletState> tasklets_;
  std::unordered_map<AttemptId, TaskletId> attempt_index_;
  // Unplaced replicas, bucketed by QoC priority class (highest first; FIFO
  // within a class). One entry per replica.
  std::map<std::uint8_t, std::deque<TaskletId>, std::greater<>> pending_;
  std::size_t pending_count_ = 0;
  // Content-addressed store (r3): interned program blobs, memoized results,
  // and submissions parked on a pending program fetch.
  store::BlobStore blobs_;
  store::MemoTable memo_;
  std::unordered_map<store::Digest, std::vector<TaskletId>> awaiting_program_;
  // In-flight and concluded DAGs (r4), plus the id source for their
  // internal node tasklets (namespaced with kDagNodeIdBit).
  std::unordered_map<DagId, DagState> dags_;
  std::uint64_t next_dag_node_seq_ = 1;
  // Pool-wide completed-attempt durations (straggler bound input).
  CompletionTracker completions_;
  // Heterogeneity score cached on the scan cadence — placement happens per
  // message, so the O(providers) aggregate is not recomputed per attempt.
  double pool_heterogeneity_ = 0.0;
  // Batched-tick state: while batching_ is true (runtime delivered a burst),
  // handler-requested queue drains only latch need_drain_; on_batch_end runs
  // the single deferred drain. batch_messages_ feeds the broker.batch.size
  // histogram.
  bool batching_ = false;
  bool need_drain_ = false;
  std::uint32_t batch_messages_ = 0;
  // Scratch buffers reused across drain_queue_batched calls (capacity
  // persists; cleared per pass).
  std::vector<ProviderView> batch_snapshot_;
  std::vector<NodeId> batch_choices_;
  std::vector<TaskletId> batch_ids_;
  // FIFO of concluded tasklet ids backing config_.terminal_retention.
  std::deque<TaskletId> terminal_order_;
};

}  // namespace tasklets::broker

// Derived pool signals: per-node health scores and a HEET-style pool
// heterogeneity score.
//
// The speed estimator (PR 6) measures each provider in isolation; this
// module aggregates those readings into two signals the ops plane publishes
// and a later PR can auto-switch scheduling policy on:
//
//   * health_score: how trustworthy one provider currently is, folding the
//     observed-reliability EWMA together with how often its attempts had to
//     be fenced (straggler defense) or timed out.
//   * heterogeneity: how spread out the pool's *effective* speeds are, as a
//     single bounded number. Defined as cv / (1 + cv) where cv is the
//     confidence-weighted coefficient of variation of effective fuel/s over
//     the given providers — 0 for a uniform pool, rising toward 1 as the
//     spread widens. Confidence weighting keeps providers whose estimator
//     has not converged (few samples) from whipping the score around: an
//     unmeasured provider contributes at quarter weight, scaling linearly
//     to full weight at the estimator's min_samples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "broker/scheduling.hpp"

namespace tasklets::broker {

// Weight in [0.25, 1] of one provider's speed reading: 0.25 with no samples,
// linear up to 1.0 once `min_samples` back the estimate.
[[nodiscard]] double speed_confidence(const ProviderView& view,
                                      std::uint64_t min_samples = 3);

// Health in [0, 1]: observed reliability discounted by fence pressure —
//   reliability * (completed + 1) / (completed + 1 + 2 * fences)
// where fences counts straggler reassignments plus attempt timeouts. A
// provider that completes work and never gets fenced scores its reliability;
// every fence costs as much credibility as two completions rebuild.
[[nodiscard]] double health_score(const ProviderView& view);

// Pool-level aggregate over one set of provider views (the broker passes the
// online set).
struct PoolStats {
  std::size_t providers = 0;  // views aggregated
  std::size_t confident = 0;  // with a confident measured speed
  double mean_speed = 0.0;    // confidence-weighted mean effective fuel/s
  double min_speed = 0.0;     // slowest effective speed
  double max_speed = 0.0;     // fastest effective speed
  double cv = 0.0;            // weighted coefficient of variation
  double heterogeneity = 0.0; // cv / (1 + cv), in [0, 1)
  double mean_health = 0.0;
  double min_health = 0.0;
};

[[nodiscard]] PoolStats compute_pool_stats(
    const std::vector<ProviderView>& providers);

}  // namespace tasklets::broker

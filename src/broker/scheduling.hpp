// Scheduling policies.
//
// The broker filters the provider pool down to the *eligible* set for a
// tasklet (online, free slot, QoC locality/cost constraints, distinct from
// already-used replicas) and then asks a Scheduler to pick one. Policies are
// deliberately small and pluggable — the policy comparison is one of the
// reproduced experiments (E3/E5), and `LocalOnly`/`CloudOnly` double as the
// paper's baselines.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "proto/types.hpp"

namespace tasklets::broker {

// The broker's live view of one provider, exposed to policies.
struct ProviderView {
  NodeId id;
  proto::Capability capability;
  std::uint32_t busy_slots = 0;     // broker-tracked in-flight attempts
  double observed_reliability = 1.0;  // EWMA of attempt success
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  // Cache affinity (r3): true when the broker believes this provider's
  // program cache already holds the tasklet's program — assigning there
  // ships a 16-byte digest instead of the bytecode and skips re-verification.
  bool warm = false;
  // Measured-speed feedback: the broker's EWMA of this provider's effective
  // fuel/s from completed attempts (speed_estimator.hpp). 0 until enough
  // samples accumulated — static policies ignore it; the adaptive policy
  // falls back to the advertised benchmark score while it is 0.
  double measured_speed_fuel_per_sec = 0.0;
  std::uint64_t speed_samples = 0;
  // Fence pressure feeding the per-node health score (pool_stats.hpp):
  // attempts of this provider fenced by the quantile straggler defense and
  // by the attempt timeout, respectively.
  std::uint64_t straggler_fences = 0;
  std::uint64_t timed_out = 0;

  [[nodiscard]] double load() const noexcept {
    return capability.slots == 0
               ? 1.0
               : static_cast<double>(busy_slots) / capability.slots;
  }

  // The speed the adaptive policy believes: measured when available,
  // advertised otherwise.
  [[nodiscard]] double effective_speed() const noexcept {
    return measured_speed_fuel_per_sec > 0.0 ? measured_speed_fuel_per_sec
                                             : capability.speed_fuel_per_sec;
  }
};

// Pool-wide context accompanying each placement decision. `eligible` holds
// the candidates (online, free slot, QoC-filtered); `best_online_speed` is
// the benchmark score of the fastest *online* provider in the entire pool,
// busy or not — selective policies compare candidates against it to decide
// whether waiting for a fast slot beats binding work to a slow device.
struct SchedulingContext {
  std::span<const ProviderView> eligible;
  double best_online_speed = 0.0;
  // Same baseline computed over *effective* speeds (measured where
  // available). A degraded device advertising a stale high score inflates
  // best_online_speed and with it the selectivity floor; the adaptive
  // policy anchors its floor here instead.
  double best_online_effective_speed = 0.0;
  // Pool heterogeneity score (pool_stats.hpp), refreshed on the broker's
  // scan cadence: 0 for a uniform pool, toward 1 as measured effective
  // speeds spread out. Published for policies so a later PR can switch
  // strategy (or tune selectivity) as the pool widens.
  double pool_heterogeneity = 0.0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  // Picks one of `context.eligible`. An empty eligible set never reaches the
  // policy. Returning an invalid NodeId refuses every candidate and leaves
  // the tasklet queued — this is how selective policies wait for a fast slot
  // instead of occupying a phone for minutes (and how restrictive baselines
  // such as cloud_only ignore non-server devices).
  [[nodiscard]] virtual NodeId pick(const proto::TaskletSpec& spec,
                                    const SchedulingContext& context,
                                    Rng& rng) = 0;

  // Batched placement over one broker tick. `candidates` is the mutable
  // free-slot candidate pool (id-sorted); the policy claims slots by
  // incrementing busy_slots as it assigns, so one fast device can absorb
  // several tasklets of a burst without starving idle peers. Writes one
  // provider id per placed tasklet into the front of `choices` and returns
  // how many were placed. The tasklets behind a batch are shape-neutral
  // (no QoC goals, no redundancy, no used-provider exclusions) — the broker
  // only batches submissions whose placement does not depend on per-spec
  // state. Returning 0 means the policy does not batch (the default) or
  // refused every pairing; the caller falls back to per-tasklet pick().
  [[nodiscard]] virtual std::size_t pick_batch(const SchedulingContext& context,
                                               std::span<ProviderView> candidates,
                                               Rng& rng,
                                               std::span<NodeId> choices) {
    (void)context;
    (void)candidates;
    (void)rng;
    (void)choices;
    return 0;
  }

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
};

// Cycles through providers in registration order: fair but oblivious to
// heterogeneity — the baseline that collapses on mixed pools.
[[nodiscard]] std::unique_ptr<Scheduler> make_round_robin();

// Uniform random among eligible.
[[nodiscard]] std::unique_ptr<Scheduler> make_random();

// Lowest busy/slots ratio; ties broken by faster device.
[[nodiscard]] std::unique_ptr<Scheduler> make_least_loaded();

// Highest benchmark score first ("fastest-first").
[[nodiscard]] std::unique_ptr<Scheduler> make_fastest_first();

// QoC-aware composite — the Tasklet system's default. Selective: declines
// providers more than ~8x slower than the fastest online device (2x under a
// `speed` QoC goal), so long work waits briefly for a fast slot instead of
// wedging on a phone for minutes. Among acceptable candidates it honours the
// tasklet's speed goal, prefers observed-reliable providers for redundant
// tasklets, cheaper ones for cost-capped tasklets, and otherwise balances
// load-discounted speed.
[[nodiscard]] std::unique_ptr<Scheduler> make_qoc_aware();

// Baseline: only schedules onto server-class providers (classic cloud
// offloading); other devices are ignored even when idle.
[[nodiscard]] std::unique_ptr<Scheduler> make_cloud_only();

// QoC-aware scoring over *measured* speed: identical blend to qoc_aware,
// but every speed term (selectivity floor, load-discounted score) uses the
// EWMA effective fuel/s the broker measured from completed attempts,
// falling back to the advertised score per provider until enough samples
// exist. This is what closes the measurement -> placement loop: degraded
// or lying providers lose work as their estimate decays, instead of
// monopolising it on the strength of a stale benchmark.
[[nodiscard]] std::unique_ptr<Scheduler> make_adaptive();

// Factory by name ("round_robin", "random", "least_loaded", "fastest_first",
// "qoc_aware", "cloud_only", "adaptive") — used by benches to sweep policies.
[[nodiscard]] Result<std::unique_ptr<Scheduler>> make_scheduler(std::string_view name);

}  // namespace tasklets::broker

// Trace analysis: turns the raw span soup a TraceStore collects into
// attribution — *where* a tasklet's latency went, not just that it happened.
//
// Three layers:
//
//   * Span trees. build_tasklet_trace() reconstructs one tasklet's causal
//     tree from its spans, tolerating chaos-degraded input: duplicated span
//     ids are dropped (counted), spans whose parent never arrived become
//     extra roots (counted), and ordering is re-derived from timestamps, so
//     a damaged trace yields a degraded report — never a crash.
//
//   * Phase breakdown + critical path. analyze_tasklet() slices the root
//     "submit" span into on-path phases (submit wire, broker queue, schedule
//     gap, outbound net, provider-side overhead, VM execution, return net,
//     broker conclude, delivery) anchored on the *winning* attempt — the one
//     whose result actually concluded the tasklet. Every interval is clamped
//     non-negative (clamps are counted as anomalies) and the residual lands
//     in `unattributed`, so the named phases plus the residual always sum to
//     the end-to-end latency exactly. Time burnt in losing attempts
//     (retries, speculation, straggler fences) is accounted off-path as
//     retry_overhead. critical_path() renders the attempt chain itself.
//
//   * Wait graph. analyze_all() aggregates breakdowns pool-wide: per-phase
//     totals and p50/p95/p99, per-provider time-in-phase (busy / vm / net /
//     overhead, wins vs losses), terminal-status counts and the slowest
//     tasklets — the report every perf hunt starts from. Reports render as
//     human text; wait_graph_diff() compares two runs A/B.
//
// parse_trace_json() loads spans back from the Chrome trace_event JSON the
// store exports (and from flight-recorder bundles), so `taskletc analyze`
// works offline on any dumped artifact.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"

namespace tasklets::analysis {

// On-path phases of one tasklet's end-to-end latency, in timeline order.
enum class Phase : int {
  kSubmitWire,     // consumer submit -> broker receive
  kQueue,          // broker queue wait (submit receive -> first placement)
  kSchedule,       // first placement -> winning attempt issue (retry waits)
  kNetOut,         // winning attempt issue -> provider accept
  kExecOverhead,   // provider-side slot wait + dispatch minus VM time
  kVm,             // VM execution window
  kNetBack,        // provider result send -> broker receive
  kConclude,       // broker receive -> verdict (voting, bookkeeping)
  kDeliver,        // broker report send -> consumer terminal
  kUnattributed,   // residual the named phases did not explain
};
inline constexpr std::size_t kPhaseCount = 10;

[[nodiscard]] std::string_view phase_name(Phase phase) noexcept;
[[nodiscard]] inline std::size_t phase_index(Phase phase) noexcept {
  return static_cast<std::size_t>(phase);
}

// One span plus its resolved children (indices into TaskletTrace::nodes).
struct SpanNode {
  Span span;
  std::vector<std::size_t> children;
};

// One tasklet's reconstructed span tree. Nodes are ordered by
// (start, span id) — causal for spans stamped against one runtime clock.
struct TaskletTrace {
  TaskletId id;
  std::vector<SpanNode> nodes;
  std::vector<std::size_t> roots;  // nodes with no resolvable parent
  std::uint32_t duplicates = 0;    // spans dropped for span-id reuse
  std::uint32_t orphans = 0;       // parent referenced but missing

  // First node with `name` in causal order, or nullptr.
  [[nodiscard]] const SpanNode* first(std::string_view name) const noexcept;
};

// One broker->provider attempt, with its provider-side children resolved.
struct AttemptView {
  std::uint64_t span_id = 0;
  std::string provider;  // "node-N" from the span args ("" when dropped)
  std::string status;    // ok / timeout / straggler / abandoned / ...
  SimTime start = 0;
  SimTime end = 0;
  SimTime exec_start = 0;  // child "execute" span window (0/0 when missing)
  SimTime exec_end = 0;
  SimTime vm = 0;          // child "vm" span duration
  bool has_execute = false;
  bool winner = false;

  [[nodiscard]] SimTime duration() const noexcept {
    return end > start ? end - start : 0;
  }
};

struct PhaseBreakdown {
  TaskletId tasklet;
  std::string status;    // terminal status (root span / report instant args)
  std::string provider;  // winning attempt's provider ("" when none)
  SimTime total = 0;     // end-to-end latency (root span duration)
  // Indexed by phase_index(); sums to `total` exactly (the residual is
  // phases[kUnattributed]).
  std::array<SimTime, kPhaseCount> phases{};
  SimTime retry_overhead = 0;  // off-path: losing attempts' wall time
  std::vector<AttemptView> attempts;
  std::uint32_t anomalies = 0;  // clamped intervals + tree damage
  // Memo-table completion: a "memo_hit" instant concluded the tasklet with
  // zero provider attempts. Every execution phase is legitimately
  // zero-length for these.
  bool memoized = false;
  // Root span and report present, plus either a winning attempt with its
  // execute+vm children or a memoized (zero-attempt) completion.
  bool complete = false;

  [[nodiscard]] SimTime phase(Phase p) const noexcept {
    return phases[phase_index(p)];
  }
  // Latency explained by named phases (total minus the residual).
  [[nodiscard]] SimTime attributed() const noexcept {
    return total - phases[phase_index(Phase::kUnattributed)];
  }
};

// One step of the rendered critical path.
struct CriticalStep {
  std::string label;  // "queue", "attempt#2", "deliver", ...
  std::string node;   // emitting / executing node
  std::string detail; // status, provider, ...
  SimTime start = 0;
  SimTime end = 0;
  bool on_winning_path = true;
};

// Reconstruction + per-tasklet analysis. `spans` is one tasklet's spans in
// any order (damaged input allowed).
[[nodiscard]] TaskletTrace build_tasklet_trace(std::vector<Span> spans);
[[nodiscard]] PhaseBreakdown analyze_tasklet(const TaskletTrace& trace);
[[nodiscard]] std::vector<CriticalStep> critical_path(const TaskletTrace& trace);

// --- pool-level aggregation --------------------------------------------------

struct PhaseAggregate {
  SimTime total = 0;
  std::vector<double> samples;  // one per tasklet, ns

  [[nodiscard]] double quantile(double q) const;
};

struct ProviderAggregate {
  std::uint64_t attempts = 0;
  std::uint64_t wins = 0;    // attempts that concluded their tasklet
  std::uint64_t losses = 0;  // fenced / timed out / superseded attempts
  SimTime busy = 0;          // total attempt wall time on this provider
  SimTime vm = 0;
  SimTime net = 0;           // attempt time outside the execute window
  SimTime overhead = 0;      // execute window minus vm
};

struct WaitGraph {
  std::size_t tasklets = 0;
  std::size_t complete = 0;
  std::uint64_t anomalies = 0;
  SimTime total = 0;           // summed end-to-end latency
  SimTime retry_overhead = 0;  // summed off-path attempt time
  std::array<PhaseAggregate, kPhaseCount> phases;
  std::map<std::string, ProviderAggregate> providers;
  std::map<std::string, std::uint64_t> statuses;
  // Slowest tasklets by end-to-end latency, descending; capped.
  std::vector<std::pair<TaskletId, SimTime>> slowest;
  static constexpr std::size_t kSlowestKept = 8;

  void add(const PhaseBreakdown& breakdown);
};

// Groups `spans` by tasklet, analyzes each, and aggregates. Instant-only
// groups (e.g. "health" alerts on the invalid tasklet id) are skipped.
[[nodiscard]] WaitGraph analyze_all(const std::vector<Span>& spans);

// --- rendering ---------------------------------------------------------------

// "1.234ms" / "12.3s" style duration for reports.
[[nodiscard]] std::string format_duration(SimTime ns);

[[nodiscard]] std::string breakdown_json(const PhaseBreakdown& breakdown);
[[nodiscard]] std::string critical_path_report(const TaskletTrace& trace);
[[nodiscard]] std::string wait_graph_report(const WaitGraph& graph);
// A/B comparison of two runs: per-phase share and quantile deltas.
[[nodiscard]] std::string wait_graph_diff(const WaitGraph& a,
                                          const WaitGraph& b);

// --- loading dumped artifacts ------------------------------------------------

// Spans from a Chrome trace_event document (TraceStore::export_chrome_json /
// ChromeTraceWriter output) or a flight-recorder bundle (the "trace" member).
[[nodiscard]] Result<std::vector<Span>> parse_trace_json(std::string_view text);

}  // namespace tasklets::analysis

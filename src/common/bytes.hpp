// Binary serialization primitives used by the wire protocol, the bytecode
// container format and tasklet parameter marshalling.
//
// Encoding rules (stable across platforms):
//   * fixed-width integers are little-endian
//   * unsigned varint (LEB128) for lengths and counts
//   * doubles are encoded via their IEEE-754 bit pattern, little-endian
//   * strings / blobs are varint length followed by raw bytes
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace tasklets {

using Bytes = std::vector<std::byte>;

// Appends encoded values to a growing byte vector.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(Bytes initial) : buffer_(std::move(initial)) {}

  void write_u8(std::uint8_t v);
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i32(std::int32_t v) { write_u32(static_cast<std::uint32_t>(v)); }
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f64(double v);
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  // Unsigned LEB128.
  void write_varint(std::uint64_t v);
  // Zig-zag + LEB128 for signed values with small magnitude.
  void write_varint_signed(std::int64_t v);

  void write_bytes(std::span<const std::byte> data);
  void write_string(std::string_view s);

  [[nodiscard]] const Bytes& buffer() const noexcept { return buffer_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }

 private:
  Bytes buffer_;
};

// Consumes encoded values from a byte span. All reads are bounds-checked;
// a failed read poisons the reader (subsequent reads also fail).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> read_u8();
  [[nodiscard]] Result<std::uint16_t> read_u16();
  [[nodiscard]] Result<std::uint32_t> read_u32();
  [[nodiscard]] Result<std::uint64_t> read_u64();
  [[nodiscard]] Result<std::int32_t> read_i32();
  [[nodiscard]] Result<std::int64_t> read_i64();
  [[nodiscard]] Result<double> read_f64();
  [[nodiscard]] Result<bool> read_bool();

  [[nodiscard]] Result<std::uint64_t> read_varint();
  [[nodiscard]] Result<std::int64_t> read_varint_signed();

  [[nodiscard]] Result<Bytes> read_bytes();
  [[nodiscard]] Result<std::string> read_string();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - offset_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

 private:
  [[nodiscard]] Status ensure(std::size_t n);

  std::span<const std::byte> data_;
  std::size_t offset_ = 0;
  bool failed_ = false;
};

// FNV-1a, used for content ids and cheap integrity checks on frames.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::byte> data) noexcept;
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

}  // namespace tasklets

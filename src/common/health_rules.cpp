#include "common/health_rules.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace tasklets::health {

namespace {
constexpr std::string_view kLog = "health";

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> tokenize(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

// A duration token the parser accepts back ("250ms", "5s"), unlike
// format_duration's human form ("5.000 s") — to_string() must round-trip.
std::string duration_token(SimTime d) {
  char buf[32];
  if (d % kSecond == 0) {
    std::snprintf(buf, sizeof buf, "%llds",
                  static_cast<long long>(d / kSecond));
  } else if (d % kMillisecond == 0) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(d / kMillisecond));
  } else if (d % kMicrosecond == 0) {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(d / kMicrosecond));
  } else {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(d));
  }
  return buf;
}

const char* kind_word(HealthRule::Kind kind) {
  switch (kind) {
    case HealthRule::Kind::kLevel: return "";
    case HealthRule::Kind::kJump: return "jump";
    case HealthRule::Kind::kRate: return "rate";
  }
  return "";
}
}  // namespace

Result<SimTime> parse_duration(std::string_view text) {
  text = trim(text);
  if (text.empty()) {
    return make_error(StatusCode::kInvalidArgument, "empty duration");
  }
  // Longest numeric prefix strtod accepts; the remainder is the unit.
  const std::string buf(text);
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str()) {
    return make_error(StatusCode::kInvalidArgument,
                      "bad duration: " + buf);
  }
  const std::string_view unit = trim(std::string_view(end));
  double scale = static_cast<double>(kSecond);  // bare number = seconds
  if (unit == "ns") scale = static_cast<double>(kNanosecond);
  else if (unit == "us") scale = static_cast<double>(kMicrosecond);
  else if (unit == "ms") scale = static_cast<double>(kMillisecond);
  else if (unit == "s" || unit.empty()) scale = static_cast<double>(kSecond);
  else if (unit == "m") scale = 60.0 * static_cast<double>(kSecond);
  else {
    return make_error(StatusCode::kInvalidArgument,
                      "bad duration unit: " + std::string(unit));
  }
  return static_cast<SimTime>(value * scale);
}

Result<HealthRule> parse_rule(std::string_view text) {
  const auto colon = text.find(':');
  if (colon == std::string_view::npos) {
    return make_error(StatusCode::kInvalidArgument,
                      "rule needs '<name>: <condition>': " + std::string(text));
  }
  HealthRule rule;
  rule.name = std::string(trim(text.substr(0, colon)));
  if (rule.name.empty()) {
    return make_error(StatusCode::kInvalidArgument, "empty rule name");
  }
  auto tokens = tokenize(text.substr(colon + 1));
  // Shape: <series> [jump|rate] <op> <threshold> [for|over <duration>]
  if (tokens.size() < 3) {
    return make_error(StatusCode::kInvalidArgument,
                      "rule too short: " + std::string(text));
  }
  std::size_t i = 0;
  rule.series = std::string(tokens[i++]);
  if (tokens[i] == "jump") {
    rule.kind = HealthRule::Kind::kJump;
    ++i;
  } else if (tokens[i] == "rate") {
    rule.kind = HealthRule::Kind::kRate;
    ++i;
  }
  if (i >= tokens.size()) {
    return make_error(StatusCode::kInvalidArgument,
                      "rule missing comparison: " + std::string(text));
  }
  if (tokens[i] == ">") {
    rule.op = HealthRule::Op::kGt;
  } else if (tokens[i] == "<") {
    rule.op = HealthRule::Op::kLt;
  } else {
    return make_error(StatusCode::kInvalidArgument,
                      "expected '>' or '<', got: " + std::string(tokens[i]));
  }
  ++i;
  if (i >= tokens.size()) {
    return make_error(StatusCode::kInvalidArgument,
                      "rule missing threshold: " + std::string(text));
  }
  {
    const std::string buf(tokens[i]);
    char* end = nullptr;
    rule.threshold = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str() || *end != '\0') {
      return make_error(StatusCode::kInvalidArgument,
                        "bad threshold: " + buf);
    }
  }
  ++i;
  if (i < tokens.size()) {
    const std::string_view keyword = tokens[i];
    if (keyword != "for" && keyword != "over") {
      return make_error(StatusCode::kInvalidArgument,
                        "expected 'for' or 'over', got: " + std::string(keyword));
    }
    ++i;
    if (i >= tokens.size()) {
      return make_error(StatusCode::kInvalidArgument,
                        "missing duration after '" + std::string(keyword) + "'");
    }
    TASKLETS_ASSIGN_OR_RETURN(const SimTime duration,
                              parse_duration(tokens[i]));
    ++i;
    if (rule.kind == HealthRule::Kind::kLevel) {
      rule.sustain = duration;
    } else {
      rule.window = duration;
    }
  }
  if (i != tokens.size()) {
    return make_error(StatusCode::kInvalidArgument,
                      "trailing tokens in rule: " + std::string(text));
  }
  return rule;
}

std::string HealthRule::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", threshold);
  std::string out = name + ": " + series;
  const char* word = kind_word(kind);
  if (*word != '\0') {
    out += ' ';
    out += word;
  }
  out += op == Op::kGt ? " > " : " < ";
  out += buf;
  if (kind == Kind::kLevel) {
    if (sustain > 0) out += " for " + duration_token(sustain);
  } else {
    out += " over " + duration_token(window);
  }
  return out;
}

HealthRuleEngine::HealthRuleEngine(std::vector<HealthRule> rules,
                                   TraceStore* trace)
    : rules_(std::move(rules)), trace_(trace), states_(rules_.size()) {}

std::vector<Alert> HealthRuleEngine::evaluate(
    const metrics::MetricsHistory& history, SimTime now) {
  const std::scoped_lock lock(mutex_);
  std::vector<Alert> fired_now;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const HealthRule& rule = rules_[i];
    RuleState& state = states_[i];
    const metrics::TimeSeries* series = history.series(rule.series);
    if (series == nullptr || series->size() == 0) continue;

    double value = 0.0;
    switch (rule.kind) {
      case HealthRule::Kind::kLevel:
        value = series->latest().value;
        break;
      case HealthRule::Kind::kJump:
        value = series->delta(now - rule.window);
        break;
      case HealthRule::Kind::kRate:
        value = series->rate_per_sec(now - rule.window);
        break;
    }
    const bool breach = rule.op == HealthRule::Op::kGt
                            ? value > rule.threshold
                            : value < rule.threshold;
    bool firing = false;
    if (breach) {
      if (state.breach_since < 0) state.breach_since = now;
      const SimTime held = now - state.breach_since;
      firing = rule.kind != HealthRule::Kind::kLevel || held >= rule.sustain;
    } else {
      state.breach_since = -1;
    }

    if (firing && !state.active) {
      state.active = true;
      ++fired_;
      Alert alert;
      alert.rule = rule.name;
      alert.series = rule.series;
      alert.value = value;
      alert.threshold = rule.threshold;
      alert.fired_at = now;
      if (log_.size() >= kLogCapacity) {
        log_.erase(log_.begin());
        ++log_evicted_;
        for (RuleState& other : states_) {
          if (other.log_index != SIZE_MAX && other.log_index > 0) {
            --other.log_index;
          } else if (other.log_index == 0) {
            other.log_index = SIZE_MAX;  // its entry was evicted
          }
        }
      }
      state.log_index = log_.size();
      log_.push_back(alert);
      fired_now.push_back(alert);
      TASKLETS_COUNT("health.alerts_fired", 1);
      TASKLETS_LOG(kWarn, kLog)
              .kv("rule", rule.name)
              .kv("series", rule.series)
              .kv("value", value)
              .kv("threshold", rule.threshold)
          << "alert fired";
      if (trace_ != nullptr) {
        Span span;
        span.span_id = next_span_id();
        span.name = "health";
        span.start = now;
        span.end = now;
        span.instant = true;
        span.args = {{"rule", rule.name},
                     {"series", rule.series},
                     {"value", std::to_string(value)},
                     {"threshold", std::to_string(rule.threshold)}};
        trace_->add(std::move(span));
      }
    } else if (!firing && state.active && !breach) {
      state.active = false;
      if (state.log_index != SIZE_MAX && state.log_index < log_.size()) {
        log_[state.log_index].active = false;
        log_[state.log_index].cleared_at = now;
      }
      state.log_index = SIZE_MAX;
      TASKLETS_LOG(kInfo, kLog).kv("rule", rule.name) << "alert cleared";
    }
  }
  return fired_now;
}

std::vector<Alert> HealthRuleEngine::active_alerts() const {
  const std::scoped_lock lock(mutex_);
  std::vector<Alert> out;
  for (const Alert& a : log_) {
    if (a.active) out.push_back(a);
  }
  return out;
}

std::vector<Alert> HealthRuleEngine::alert_log() const {
  const std::scoped_lock lock(mutex_);
  return log_;
}

std::uint64_t HealthRuleEngine::fired_count() const {
  const std::scoped_lock lock(mutex_);
  return fired_;
}

}  // namespace tasklets::health

#include "common/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace tasklets::metrics {

namespace {
std::atomic<bool> g_enabled{true};

// Built-in help catalog. Keys are either exact metric names or dotted
// prefixes covering a dynamic family ("broker.speed" describes every
// "broker.speed.<node>"). Runtime additions via describe_metric() land in
// the same map.
std::map<std::string, std::string, std::less<>>& help_catalog() {
  static auto* catalog = new std::map<std::string, std::string, std::less<>>{
      {"consumer.submitted", "tasklets submitted by consumers"},
      {"consumer.completed", "tasklets reported completed to consumers"},
      {"consumer.failed", "tasklets reported failed to consumers"},
      {"consumer.resubmits", "unanswered submits re-sent after backoff"},
      {"consumer.abandoned", "tasklets abandoned after max_resubmits"},
      {"consumer.backoff_wait_ns", "backoff delay before each resubmit (ns)"},
      {"consumer.digest_submits", "repeat submissions sent digest-only"},
      {"consumer.program_serves", "FetchProgram answered for the broker"},
      {"broker.submitted", "distinct submissions accepted"},
      {"broker.duplicate_submits", "deduplicated submit retransmits"},
      {"broker.attempts_issued", "assignments sent to providers"},
      {"broker.attempts_ok", "attempts that returned a successful outcome"},
      {"broker.attempts_lost", "attempts lost with their provider"},
      {"broker.attempts_timed_out", "attempts fenced by the attempt timeout"},
      {"broker.duplicate_results", "late or stale attempt results dropped"},
      {"broker.reissues", "recovery re-issues after loss or timeout"},
      {"broker.migrations", "suspended snapshots migrated to another node"},
      {"broker.speculations", "speculative backup attempts issued"},
      {"broker.completed", "tasklets concluded successfully"},
      {"broker.failed", "terminal failures, by report status"},
      {"broker.assigned", "attempts placed, per provider"},
      {"broker.queue_depth", "tasklets waiting for a provider"},
      {"broker.latency_ns", "submit to terminal report latency (ns)"},
      {"broker.speed", "measured effective speed per provider (fuel/s EWMA)"},
      {"broker.health", "per-provider health score x 1e6 (1e6 = healthy)"},
      {"broker.straggler_reassigns",
       "in-flight attempts fenced by the straggler bound"},
      {"broker.admission_rejected",
       "submissions refused by deadline admission control"},
      {"broker.pool.heterogeneity",
       "pool heterogeneity score x 1e6 (0 = uniform speeds)"},
      {"broker.pool.online", "providers currently online"},
      {"broker.pool.confident",
       "online providers with a confident speed estimate"},
      {"broker.pool.mean_speed", "confidence-weighted mean effective fuel/s"},
      {"broker.store.program_dedup_hits",
       "digest submissions resolved against resident bytes"},
      {"broker.store.program_fetches", "FetchProgram sent to consumers"},
      {"broker.store.program_serves", "ProgramData served to providers"},
      {"broker.store.memo_hits", "submissions answered from the result memo"},
      {"broker.store.memo_misses", "memo probes that found no entry"},
      {"broker.store.memo_inserts", "verified results stored in the memo"},
      {"broker.memo.hit_rate",
       "derived: cumulative memo hits / (hits + misses), sampled"},
      {"broker.dag.submitted", "DAG submissions accepted (r4)"},
      {"broker.dag.completed", "DAGs concluded successfully"},
      {"broker.dag.failed", "DAGs concluded with a failure"},
      {"broker.dag.duplicate_submits", "deduplicated SubmitDag retransmits"},
      {"broker.dag.nodes_executed", "DAG nodes completed via provider attempts"},
      {"broker.dag.nodes_memo", "DAG nodes answered from the memo table"},
      {"broker.dag.nodes_skipped",
       "DAG nodes never demanded (downstream memo hits)"},
      {"broker.dag.results_delegated",
       "node results bound broker-side into dependent argument slots"},
      {"consumer.dags_submitted", "DAG submissions sent"},
      {"consumer.dags_completed", "terminal DagStatus: completed"},
      {"consumer.dags_failed", "terminal DagStatus: any failure"},
      {"consumer.dag_resubmits", "unanswered DAG submits re-sent after backoff"},
      {"consumer.dags_abandoned", "DAGs abandoned after max_resubmits"},
      {"consumer.dag_node_results", "deduplicated per-node result frames"},
      {"broker.store.assigns_by_digest",
       "assignments shipped digest-only to warm providers"},
      {"provider.assignments", "assignments accepted"},
      {"provider.duplicate_assigns", "duplicate attempt ids dropped"},
      {"provider.rejected", "assignments rejected (no free slot)"},
      {"provider.completed", "executions finished ok"},
      {"provider.trapped", "executions ended in a deterministic trap"},
      {"provider.vm.executions", "VM runs completed"},
      {"provider.vm.traps", "VM deterministic traps"},
      {"provider.vm.slices", "fuel slices run"},
      {"provider.vm.suspensions", "suspensions (checkpoint taken)"},
      {"provider.vm.instructions", "instructions retired"},
      {"provider.vm.snapshot_bytes", "snapshot bytes produced"},
      {"provider.vm.cache_evictions",
       "verified-program cache entries evicted by the LRU cap"},
      {"provider.program_cache.hits",
       "digest assignments resolved from the local blob store"},
      {"provider.program_cache.misses", "digest assignments that pulled bytes"},
      {"provider.program_fetches", "FetchProgram sent to the broker"},
      {"health.alerts_fired", "health rules transitioned to firing"},
      {"net.tcp.frames_out", "TCP frames sent"},
      {"net.tcp.bytes_out", "TCP bytes sent"},
      {"net.tcp.frames_in", "TCP frames received"},
      {"net.tcp.bytes_in", "TCP bytes received"},
      {"net.inproc.routed", "in-process frames routed"},
      {"net.fault", "injected faults, by action"},
  };
  return *catalog;
}

std::mutex& help_mutex() {
  static auto* m = new std::mutex;
  return *m;
}

}  // namespace

void json_append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

const char* metric_type_name(MetricType t) noexcept {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "unknown";
}

std::string metric_help(std::string_view name) {
  const std::scoped_lock lock(help_mutex());
  const auto& catalog = help_catalog();
  std::string_view probe = name;
  while (true) {
    const auto it = catalog.find(probe);
    if (it != catalog.end()) return it->second;
    const auto dot = probe.rfind('.');
    if (dot == std::string_view::npos) return {};
    probe = probe.substr(0, dot);
  }
}

void describe_metric(std::string name, std::string help) {
  const std::scoped_lock lock(help_mutex());
  help_catalog().insert_or_assign(std::move(name), std::move(help));
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    const LogHistogram hist = h.snapshot();
    MetricsSnapshot::HistogramEntry entry;
    entry.name = name;
    entry.count = hist.count();
    entry.p50 = hist.quantile(0.50);
    entry.p95 = hist.quantile(0.95);
    entry.p99 = hist.quantile(0.99);
    snap.histograms.push_back(std::move(entry));
  }
  snap.meta.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    snap.meta.push_back({name, MetricType::kCounter, metric_help(name)});
  }
  for (const auto& [name, g] : gauges_) {
    snap.meta.push_back({name, MetricType::kGauge, metric_help(name)});
  }
  for (const auto& [name, h] : histograms_) {
    snap.meta.push_back({name, MetricType::kHistogram, metric_help(name)});
  }
  std::sort(snap.meta.begin(), snap.meta.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const noexcept {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

std::string MetricsSnapshot::to_text() const {
  // meta is sorted by name (see snapshot()); hand-built snapshots without
  // meta entries just get plain "name value" lines.
  const auto meta_of = [this](const std::string& name) -> const MetaEntry* {
    const auto it = std::lower_bound(
        meta.begin(), meta.end(), name,
        [](const MetaEntry& m, const std::string& n) { return m.name < n; });
    return it != meta.end() && it->name == name ? &*it : nullptr;
  };
  std::string out;
  const auto head = [&](const std::string& name) {
    if (const MetaEntry* m = meta_of(name)) {
      if (!m->help.empty()) {
        out += "# HELP ";
        out += name;
        out += ' ';
        out += m->help;
        out += '\n';
      }
      out += "# TYPE ";
      out += name;
      out += ' ';
      out += metric_type_name(m->type);
      out += '\n';
    }
  };
  for (const auto& [name, v] : counters) {
    head(name);
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  for (const auto& [name, v] : gauges) {
    head(name);
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  for (const auto& h : histograms) {
    head(h.name);
    char buf[192];
    std::snprintf(buf, sizeof buf, "%s count=%zu p50=%.0f p95=%.0f p99=%.0f\n",
                  h.name.c_str(), h.count, h.p50, h.p95, h.p99);
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    json_append_escaped(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    json_append_escaped(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    json_append_escaped(out, h.name);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  ":{\"count\":%zu,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
                  h.count, h.p50, h.p95, h.p99);
    out += buf;
  }
  out += "},\"meta\":{";
  first = true;
  for (const auto& m : meta) {
    if (!first) out.push_back(',');
    first = false;
    json_append_escaped(out, m.name);
    out += ":{\"type\":";
    json_append_escaped(out, metric_type_name(m.type));
    out += ",\"help\":";
    json_append_escaped(out, m.help);
    out += '}';
  }
  out += "}}";
  return out;
}

// --- time-series layer -------------------------------------------------------

TimeSeries::TimeSeries(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void TimeSeries::record(SimTime at, double value) {
  const std::scoped_lock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back({at, value});
  } else {
    ring_[head_] = {at, value};
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

std::size_t TimeSeries::size() const {
  const std::scoped_lock lock(mutex_);
  return ring_.size();
}

std::uint64_t TimeSeries::total_recorded() const {
  const std::scoped_lock lock(mutex_);
  return total_;
}

SeriesPoint TimeSeries::latest() const {
  const std::scoped_lock lock(mutex_);
  if (ring_.empty()) return {};
  const std::size_t last =
      ring_.size() < capacity_ ? ring_.size() - 1
                               : (head_ + capacity_ - 1) % capacity_;
  return ring_[last];
}

std::vector<SeriesPoint> TimeSeries::window_locked(SimTime since) const {
  std::vector<SeriesPoint> out;
  out.reserve(ring_.size());
  const std::size_t n = ring_.size();
  const std::size_t start = n < capacity_ ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) {
    const SeriesPoint& p = ring_[(start + i) % n];
    if (p.at >= since) out.push_back(p);
  }
  return out;
}

std::vector<SeriesPoint> TimeSeries::points() const {
  const std::scoped_lock lock(mutex_);
  return window_locked(kWholeSeries);
}

std::vector<SeriesPoint> TimeSeries::window(SimTime since) const {
  const std::scoped_lock lock(mutex_);
  return window_locked(since);
}

double TimeSeries::delta(SimTime since) const {
  const std::scoped_lock lock(mutex_);
  const auto w = window_locked(since);
  if (w.size() < 2) return 0.0;
  return w.back().value - w.front().value;
}

double TimeSeries::rate_per_sec(SimTime since) const {
  const std::scoped_lock lock(mutex_);
  const auto w = window_locked(since);
  if (w.size() < 2) return 0.0;
  const double elapsed = to_seconds(w.back().at - w.front().at);
  if (elapsed <= 0.0) return 0.0;
  return (w.back().value - w.front().value) / elapsed;
}

double TimeSeries::min(SimTime since) const {
  const std::scoped_lock lock(mutex_);
  const auto w = window_locked(since);
  if (w.empty()) return 0.0;
  double m = w.front().value;
  for (const auto& p : w) m = std::min(m, p.value);
  return m;
}

double TimeSeries::max(SimTime since) const {
  const std::scoped_lock lock(mutex_);
  const auto w = window_locked(since);
  if (w.empty()) return 0.0;
  double m = w.front().value;
  for (const auto& p : w) m = std::max(m, p.value);
  return m;
}

double TimeSeries::mean(SimTime since) const {
  const std::scoped_lock lock(mutex_);
  const auto w = window_locked(since);
  if (w.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& p : w) sum += p.value;
  return sum / static_cast<double>(w.size());
}

double TimeSeries::quantile(double q, SimTime since) const {
  const std::scoped_lock lock(mutex_);
  auto w = window_locked(since);
  if (w.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(w.size());
  for (const auto& p : w) values.push_back(p.value);
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

MetricsHistory::MetricsHistory(std::size_t capacity_per_series)
    : capacity_(capacity_per_series == 0 ? 1 : capacity_per_series) {}

TimeSeries& MetricsHistory::series_for(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = series_.find(name);
  if (it != series_.end()) return it->second;
  return series_.try_emplace(std::string(name), capacity_).first->second;
}

void MetricsHistory::sample(const MetricsSnapshot& snap, SimTime at) {
  for (const auto& [name, v] : snap.counters) {
    series_for(name).record(at, static_cast<double>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    series_for(name).record(at, static_cast<double>(v));
  }
  for (const auto& h : snap.histograms) {
    series_for(h.name + ".count").record(at, static_cast<double>(h.count));
    series_for(h.name + ".p50").record(at, h.p50);
    series_for(h.name + ".p95").record(at, h.p95);
    series_for(h.name + ".p99").record(at, h.p99);
  }
  // Derived series: cumulative memo-table hit rate (r4). Hits and misses are
  // plain counters, so the division has to happen at sample time; 0 probes
  // records 0 so the series exists from the first sample.
  {
    double hits = 0;
    double misses = 0;
    for (const auto& [name, v] : snap.counters) {
      if (name == "broker.store.memo_hits") hits = static_cast<double>(v);
      if (name == "broker.store.memo_misses") misses = static_cast<double>(v);
    }
    const double probes = hits + misses;
    series_for("broker.memo.hit_rate").record(at, probes > 0 ? hits / probes : 0);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::string> MetricsHistory::names() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

const TimeSeries* MetricsHistory::series(std::string_view name) const {
  const std::scoped_lock lock(mutex_);
  const auto it = series_.find(name);
  return it != series_.end() ? &it->second : nullptr;
}

std::uint64_t MetricsHistory::samples_taken() const {
  return samples_.load(std::memory_order_relaxed);
}

MetricsSampler::MetricsSampler(MetricsHistory& history, SimTime interval,
                               Callback on_sample)
    : history_(history),
      interval_(interval > 0 ? interval : 100 * kMillisecond),
      on_sample_(std::move(on_sample)),
      thread_([this] { loop(); }) {}

MetricsSampler::~MetricsSampler() { stop(); }

void MetricsSampler::sample_now() {
  const SimTime now = clock_.now();
  history_.sample(MetricsRegistry::instance().snapshot(), now);
  if (on_sample_) on_sample_(now);
}

void MetricsSampler::stop() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsSampler::loop() {
  std::unique_lock lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::nanoseconds(interval_),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

}  // namespace tasklets::metrics

#include "common/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace tasklets::metrics {

namespace {
std::atomic<bool> g_enabled{true};

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}
}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c.value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g.value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    const LogHistogram hist = h.snapshot();
    MetricsSnapshot::HistogramEntry entry;
    entry.name = name;
    entry.count = hist.count();
    entry.p50 = hist.quantile(0.50);
    entry.p95 = hist.quantile(0.95);
    entry.p99 = hist.quantile(0.99);
    snap.histograms.push_back(std::move(entry));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge(std::string_view name) const noexcept {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

std::string MetricsSnapshot::to_text() const {
  std::string out;
  for (const auto& [name, v] : counters) {
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  for (const auto& [name, v] : gauges) {
    out += name;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  for (const auto& h : histograms) {
    char buf[192];
    std::snprintf(buf, sizeof buf, "%s count=%zu p50=%.0f p95=%.0f p99=%.0f\n",
                  h.name.c_str(), h.count, h.p50, h.p95, h.p99);
    out += buf;
  }
  return out;
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, h.name);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  ":{\"count\":%zu,\"p50\":%.1f,\"p95\":%.1f,\"p99\":%.1f}",
                  h.count, h.p50, h.p95, h.p99);
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace tasklets::metrics

#include "common/bytes.hpp"

#include <bit>
#include <cstring>

namespace tasklets {

namespace {
constexpr StatusCode kTruncated = StatusCode::kDataLoss;
}  // namespace

void ByteWriter::write_u8(std::uint8_t v) {
  buffer_.push_back(static_cast<std::byte>(v));
}

void ByteWriter::write_u16(std::uint16_t v) {
  write_u8(static_cast<std::uint8_t>(v & 0xFF));
  write_u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    write_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    write_u8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void ByteWriter::write_f64(double v) {
  write_u64(std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::write_varint(std::uint64_t v) {
  while (v >= 0x80) {
    write_u8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  write_u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::write_varint_signed(std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  write_varint((u << 1) ^ static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::write_bytes(std::span<const std::byte> data) {
  write_varint(data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void ByteWriter::write_string(std::string_view s) {
  write_varint(s.size());
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  buffer_.insert(buffer_.end(), p, p + s.size());
}

Status ByteReader::ensure(std::size_t n) {
  if (failed_) return make_error(kTruncated, "reader already failed");
  if (remaining() < n) {
    failed_ = true;
    return make_error(kTruncated, "truncated input");
  }
  return Status::ok();
}

Result<std::uint8_t> ByteReader::read_u8() {
  TASKLETS_RETURN_IF_ERROR(ensure(1));
  return static_cast<std::uint8_t>(data_[offset_++]);
}

Result<std::uint16_t> ByteReader::read_u16() {
  TASKLETS_RETURN_IF_ERROR(ensure(2));
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(data_[offset_++]))
         << (8 * i);
  }
  return v;
}

Result<std::uint32_t> ByteReader::read_u32() {
  TASKLETS_RETURN_IF_ERROR(ensure(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[offset_++]))
         << (8 * i);
  }
  return v;
}

Result<std::uint64_t> ByteReader::read_u64() {
  TASKLETS_RETURN_IF_ERROR(ensure(8));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[offset_++]))
         << (8 * i);
  }
  return v;
}

Result<std::int32_t> ByteReader::read_i32() {
  TASKLETS_ASSIGN_OR_RETURN(auto v, read_u32());
  return static_cast<std::int32_t>(v);
}

Result<std::int64_t> ByteReader::read_i64() {
  TASKLETS_ASSIGN_OR_RETURN(auto v, read_u64());
  return static_cast<std::int64_t>(v);
}

Result<double> ByteReader::read_f64() {
  TASKLETS_ASSIGN_OR_RETURN(auto v, read_u64());
  return std::bit_cast<double>(v);
}

Result<bool> ByteReader::read_bool() {
  TASKLETS_ASSIGN_OR_RETURN(auto v, read_u8());
  if (v > 1) {
    failed_ = true;
    return make_error(kTruncated, "invalid bool encoding");
  }
  return v == 1;
}

Result<std::uint64_t> ByteReader::read_varint() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    TASKLETS_ASSIGN_OR_RETURN(auto byte, read_u8());
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical trailing bits beyond 64.
      if (shift == 63 && (byte & 0x7E) != 0) {
        failed_ = true;
        return make_error(kTruncated, "varint overflow");
      }
      return v;
    }
  }
  failed_ = true;
  return make_error(kTruncated, "varint too long");
}

Result<std::int64_t> ByteReader::read_varint_signed() {
  TASKLETS_ASSIGN_OR_RETURN(auto u, read_varint());
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Result<Bytes> ByteReader::read_bytes() {
  TASKLETS_ASSIGN_OR_RETURN(auto n, read_varint());
  if (n > remaining()) {
    failed_ = true;
    return make_error(kTruncated, "blob length exceeds input");
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(offset_),
            data_.begin() + static_cast<std::ptrdiff_t>(offset_ + n));
  offset_ += n;
  return out;
}

Result<std::string> ByteReader::read_string() {
  TASKLETS_ASSIGN_OR_RETURN(auto n, read_varint());
  if (n > remaining()) {
    failed_ = true;
    return make_error(kTruncated, "string length exceeds input");
  }
  std::string out(reinterpret_cast<const char*>(data_.data() + offset_), n);
  offset_ += n;
  return out;
}

std::uint64_t fnv1a(std::span<const std::byte> data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a(std::string_view s) noexcept {
  return fnv1a(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(s.data()), s.size()));
}

}  // namespace tasklets

// Strongly-typed identifiers. Using distinct types for node, tasklet and job
// ids turns "passed the wrong id" into a compile error.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace tasklets {

template <typename Tag>
class Id {
 public:
  constexpr Id() noexcept = default;
  constexpr explicit Id(std::uint64_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept { return value_ != 0; }

  friend constexpr bool operator==(Id a, Id b) noexcept { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) noexcept { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) noexcept { return a.value_ < b.value_; }

  [[nodiscard]] std::string to_string() const {
    return std::string{Tag::prefix} + std::to_string(value_);
  }

 private:
  std::uint64_t value_ = 0;  // 0 is reserved as "invalid"
};

struct NodeIdTag { static constexpr const char* prefix = "node-"; };
struct TaskletIdTag { static constexpr const char* prefix = "tasklet-"; };
struct JobIdTag { static constexpr const char* prefix = "job-"; };
struct AttemptIdTag { static constexpr const char* prefix = "attempt-"; };
struct DagIdTag { static constexpr const char* prefix = "dag-"; };

using NodeId = Id<NodeIdTag>;        // a provider, consumer or broker endpoint
using TaskletId = Id<TaskletIdTag>;  // one logical unit of computation
using JobId = Id<JobIdTag>;          // a batch of tasklets issued together
using AttemptId = Id<AttemptIdTag>;  // one (possibly redundant) execution try
using DagId = Id<DagIdTag>;          // a dataflow graph of tasklets (r4)

// Monotonic id source. Thread-safe; never yields the invalid id 0.
template <typename IdType>
class IdGenerator {
 public:
  explicit IdGenerator(std::uint64_t start = 1) noexcept : next_(start) {}

  [[nodiscard]] IdType next() noexcept {
    return IdType{next_.fetch_add(1, std::memory_order_relaxed)};
  }

 private:
  std::atomic<std::uint64_t> next_;
};

}  // namespace tasklets

namespace std {
template <typename Tag>
struct hash<tasklets::Id<Tag>> {
  size_t operator()(tasklets::Id<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std

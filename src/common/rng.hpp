// Deterministic, platform-independent random number generation.
//
// std::mt19937 + std::*_distribution are not guaranteed to produce identical
// sequences across standard-library implementations; the simulator needs
// bit-identical runs from a seed, so we ship our own generator and
// distributions (xoshiro256++ seeded via splitmix64).
#pragma once

#include <cstdint>
#include <cmath>
#include <limits>

namespace tasklets {

// splitmix64: used for seed expansion.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256++ 1.0 (Blackman & Vigna), public domain reference algorithm.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses rejection sampling to avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  // Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  // Exponential with the given mean (inverse-CDF method); mean <= 0 yields 0.
  double exponential(double mean) noexcept {
    if (mean <= 0) return 0.0;
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return -mean * std::log(u);
  }

  // Standard normal via Marsaglia polar method (deterministic given state).
  double normal(double mu = 0.0, double sigma = 1.0) noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return mu + sigma * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return mu + sigma * u * m;
  }

  // Pareto (heavy-tailed) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) noexcept {
    double u;
    do { u = uniform(); } while (u <= 0.0);
    return xm / std::pow(u, 1.0 / alpha);
  }

  bool bernoulli(double p) noexcept { return uniform() < p; }

  // Forks an independent stream; children of distinct calls are decorrelated.
  Rng fork() noexcept { return Rng{next() ^ 0x9e3779b97f4a7c15ULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace tasklets

// Time model shared by the threaded and simulated runtimes.
//
// All middleware code expresses time as SimTime (nanoseconds since an
// arbitrary epoch) and obtains it from a Clock. The threaded runtime wires a
// steady_clock-backed implementation; the simulator wires its virtual clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace tasklets {

// Nanoseconds. Signed so durations subtract naturally.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000 * kNanosecond;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

[[nodiscard]] constexpr double to_seconds(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
[[nodiscard]] constexpr double to_millis(SimTime t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr SimTime from_seconds(double s) noexcept {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}
[[nodiscard]] constexpr SimTime from_millis(double ms) noexcept {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

// "1.234 s" / "12.3 ms" / "456 us" rendering for logs and reports.
[[nodiscard]] std::string format_duration(SimTime t);

class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual SimTime now() const = 0;
};

// Wall-clock implementation for the threaded runtime.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : origin_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] SimTime now() const override {
    const auto d = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

// Manually advanced clock (unit tests and the simulation engine).
class ManualClock final : public Clock {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }
  void advance(SimTime delta) noexcept { now_ += delta; }
  void set(SimTime t) noexcept { now_ = t; }

 private:
  SimTime now_ = 0;
};

}  // namespace tasklets

#include "common/stats.hpp"

#include <cmath>
#include <cstdio>

namespace tasklets {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Sampler::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  // Clamp q into [0, 1]; the !(q > 0) form also maps NaN to 0.
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Sampler::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

int LogHistogram::bucket_for(double x) noexcept {
  if (x < 1.0) return 0;
  const double log2x = std::log2(x);
  const int b = static_cast<int>(log2x * kSubBuckets);
  return std::min(b, kNumBuckets - 1);
}

double LogHistogram::bucket_lower(int i) noexcept {
  return std::exp2(static_cast<double>(i) / kSubBuckets);
}

void LogHistogram::add(double x) noexcept {
  if (x < 0) x = 0;
  buckets_[static_cast<std::size_t>(bucket_for(x))]++;
  ++total_;
  max_ = std::max(max_, x);
}

double LogHistogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0.0;
  // Clamp q into [0, 1]; the !(q > 0) form also maps NaN to 0.
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<std::size_t>(i)];
    if (seen > target) {
      // Midpoint of bucket, clamped to observed max.
      const double mid = (bucket_lower(i) + bucket_lower(i + 1)) / 2.0;
      return std::min(mid, max_);
    }
  }
  return max_;
}

std::string LogHistogram::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "p50=%.0f p95=%.0f p99=%.0f max=%.0f n=%zu",
                quantile(0.50), quantile(0.95), quantile(0.99), max_, total_);
  return buf;
}

double jain_fairness(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace tasklets

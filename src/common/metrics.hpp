// Process-wide runtime metrics: named counters, gauges and latency
// histograms.
//
// Handles returned by the registry are stable for the process lifetime, so
// hot paths resolve a metric once (static local) and then pay only a relaxed
// atomic increment. Histograms wrap the log-bucketed LogHistogram under a
// small mutex — observation volume in the middleware is per-message, not
// per-instruction, so the lock is uncontended in practice.
//
// The global enable flag gates the TASKLETS_COUNT/GAUGE/OBSERVE macros:
// disabled, a metric site costs one relaxed load and a branch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/stats.hpp"

namespace tasklets::metrics {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  void observe(double x) noexcept {
    const std::scoped_lock lock(mutex_);
    hist_.add(x);
  }
  // Copy of the underlying histogram for quantile queries.
  [[nodiscard]] LogHistogram snapshot() const {
    const std::scoped_lock lock(mutex_);
    return hist_;
  }
  void reset() noexcept {
    const std::scoped_lock lock(mutex_);
    hist_ = LogHistogram{};
  }

 private:
  mutable std::mutex mutex_;
  LogHistogram hist_;
};

// Appends `s` to `out` as a quoted, escaped JSON string. Shared by every
// hand-rolled JSON renderer in the ops plane.
void json_append_escaped(std::string& out, std::string_view s);

// What kind of instrument a registry entry is. Exported alongside values so
// dashboards and the admin endpoint can interpret a metric without
// out-of-band knowledge.
enum class MetricType { kCounter, kGauge, kHistogram };
[[nodiscard]] const char* metric_type_name(MetricType t) noexcept;

// Help text for a metric name: exact catalog match first, then the longest
// dotted prefix — which is how dynamic families like "broker.speed.<node>"
// resolve to one catalog entry. Unknown names return "".
[[nodiscard]] std::string metric_help(std::string_view name);
// Register help text at runtime. Built-in names ship in a static catalog;
// modules with their own metric families add themselves here.
void describe_metric(std::string name, std::string help);

// Point-in-time copy of every registered metric, with text and JSON
// renderings for dashboards, benches and the CI exporter check.
struct MetricsSnapshot {
  struct HistogramEntry {
    std::string name;
    std::size_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  // Self-description of one metric (satellite of the ops plane: exports are
  // machine-consumable without reading the source).
  struct MetaEntry {
    std::string name;
    MetricType type = MetricType::kCounter;
    std::string help;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramEntry> histograms;
  std::vector<MetaEntry> meta;  // one per metric, sorted by name

  // Value of a named counter/gauge; 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] std::int64_t gauge(std::string_view name) const noexcept;

  // "name value" per line, sorted by name within each kind; metrics with
  // catalog help text are preceded by "# HELP <name> <text>" and
  // "# TYPE <name> <kind>" comment lines (Prometheus-style exposition).
  [[nodiscard]] std::string to_text() const;
  // {"counters":{...},"gauges":{...},"histograms":{...},"meta":{...}}
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // Lookup-or-create; the returned reference stays valid for the process
  // lifetime (node-based storage).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  // Zeroes every metric (benches and tests isolate runs with this; the
  // registry is process-wide).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // std::map: node-based, so references survive later insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Global enable flag (default on). Disabled, the macros below skip the
// atomic write entirely.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

// --- time-series layer -------------------------------------------------------
//
// The registry answers "what is the value now"; the history answers "what
// was it over the last N seconds". A sampler (background thread in the real
// runtime, per-tick event in the simulator) appends one point per metric per
// interval into fixed-capacity ring buffers, so memory stays bounded no
// matter how long the cluster runs.

struct SeriesPoint {
  SimTime at = 0;  // sample time: steady-clock ns (real) or virtual ns (sim)
  double value = 0.0;
};

// Sentinel "window covers the whole series".
inline constexpr SimTime kWholeSeries = std::numeric_limits<SimTime>::min();

// Fixed-capacity ring buffer of timestamped samples with windowed queries.
// Thread-safe: the sampler appends while admin-endpoint readers query.
class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 512);

  void record(SimTime at, double value);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  // Total points ever recorded, including ones the ring has since evicted.
  [[nodiscard]] std::uint64_t total_recorded() const;
  [[nodiscard]] SeriesPoint latest() const;  // zero point when empty

  // Oldest-to-newest copies; `window` keeps only points with at >= since.
  [[nodiscard]] std::vector<SeriesPoint> points() const;
  [[nodiscard]] std::vector<SeriesPoint> window(SimTime since) const;

  // Windowed queries over points with at >= since (kWholeSeries = all that
  // survive in the ring). Fewer than two points: delta/rate are 0.
  [[nodiscard]] double delta(SimTime since = kWholeSeries) const;
  [[nodiscard]] double rate_per_sec(SimTime since = kWholeSeries) const;
  [[nodiscard]] double min(SimTime since = kWholeSeries) const;
  [[nodiscard]] double max(SimTime since = kWholeSeries) const;
  [[nodiscard]] double mean(SimTime since = kWholeSeries) const;
  // Exact quantile (linear interpolation) over window values; 0 when empty.
  [[nodiscard]] double quantile(double q, SimTime since = kWholeSeries) const;

 private:
  // Callers hold mutex_.
  [[nodiscard]] std::vector<SeriesPoint> window_locked(SimTime since) const;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<SeriesPoint> ring_;
  std::size_t head_ = 0;  // next write slot once the ring is full
  std::uint64_t total_ = 0;
};

// Named time series fed from successive registry snapshots. Counters and
// gauges become one series each under their metric name; histograms fan out
// into derived "<name>.count" / ".p50" / ".p95" / ".p99" series. Series are
// node-based and never removed, so `series()` pointers stay valid while the
// history lives; TimeSeries is internally synchronized, so a returned
// pointer can be queried while sampling continues.
class MetricsHistory {
 public:
  explicit MetricsHistory(std::size_t capacity_per_series = 512);

  // Record one point per metric in `snap` at time `at`.
  void sample(const MetricsSnapshot& snap, SimTime at);

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] const TimeSeries* series(std::string_view name) const;
  [[nodiscard]] std::uint64_t samples_taken() const;
  [[nodiscard]] std::size_t series_capacity() const noexcept {
    return capacity_;
  }

 private:
  TimeSeries& series_for(std::string_view name);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  // std::map: node-based, so TimeSeries addresses survive later insertions.
  std::map<std::string, TimeSeries, std::less<>> series_;
  std::atomic<std::uint64_t> samples_{0};
};

// Background sampler for the threaded runtime: every `interval` it snapshots
// the registry into `history`, then invokes `on_sample` (the ops plane hooks
// rule evaluation there). The simulator does not use this — it samples from
// a virtual-time event instead (see core::SimCluster).
class MetricsSampler {
 public:
  using Callback = std::function<void(SimTime now)>;

  MetricsSampler(MetricsHistory& history, SimTime interval,
                 Callback on_sample = nullptr);
  ~MetricsSampler();

  // One synchronous sample+callback; safe concurrently with the thread.
  void sample_now();
  void stop();

 private:
  void loop();

  MetricsHistory& history_;
  SimTime interval_;
  Callback on_sample_;
  SteadyClock clock_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace tasklets::metrics

// Hot-path instrumentation: the handle is resolved once per call site.
#define TASKLETS_COUNT(name, n)                                            \
  do {                                                                     \
    if (::tasklets::metrics::enabled()) {                                  \
      static ::tasklets::metrics::Counter& tasklets_metric_ =              \
          ::tasklets::metrics::MetricsRegistry::instance().counter(name);  \
      tasklets_metric_.inc(n);                                             \
    }                                                                      \
  } while (0)

#define TASKLETS_GAUGE_SET(name, v)                                        \
  do {                                                                     \
    if (::tasklets::metrics::enabled()) {                                  \
      static ::tasklets::metrics::Gauge& tasklets_metric_ =                \
          ::tasklets::metrics::MetricsRegistry::instance().gauge(name);    \
      tasklets_metric_.set(v);                                             \
    }                                                                      \
  } while (0)

#define TASKLETS_OBSERVE(name, x)                                          \
  do {                                                                     \
    if (::tasklets::metrics::enabled()) {                                  \
      static ::tasklets::metrics::Histogram& tasklets_metric_ =            \
          ::tasklets::metrics::MetricsRegistry::instance().histogram(name); \
      tasklets_metric_.observe(x);                                         \
    }                                                                      \
  } while (0)

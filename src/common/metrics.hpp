// Process-wide runtime metrics: named counters, gauges and latency
// histograms.
//
// Handles returned by the registry are stable for the process lifetime, so
// hot paths resolve a metric once (static local) and then pay only a relaxed
// atomic increment. Histograms wrap the log-bucketed LogHistogram under a
// small mutex — observation volume in the middleware is per-message, not
// per-instruction, so the lock is uncontended in practice.
//
// The global enable flag gates the TASKLETS_COUNT/GAUGE/OBSERVE macros:
// disabled, a metric site costs one relaxed load and a branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace tasklets::metrics {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  void observe(double x) noexcept {
    const std::scoped_lock lock(mutex_);
    hist_.add(x);
  }
  // Copy of the underlying histogram for quantile queries.
  [[nodiscard]] LogHistogram snapshot() const {
    const std::scoped_lock lock(mutex_);
    return hist_;
  }
  void reset() noexcept {
    const std::scoped_lock lock(mutex_);
    hist_ = LogHistogram{};
  }

 private:
  mutable std::mutex mutex_;
  LogHistogram hist_;
};

// Point-in-time copy of every registered metric, with text and JSON
// renderings for dashboards, benches and the CI exporter check.
struct MetricsSnapshot {
  struct HistogramEntry {
    std::string name;
    std::size_t count = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<HistogramEntry> histograms;

  // Value of a named counter/gauge; 0 when absent.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] std::int64_t gauge(std::string_view name) const noexcept;

  // "name value" per line, sorted by name.
  [[nodiscard]] std::string to_text() const;
  // {"counters":{...},"gauges":{...},"histograms":{...}}
  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  // Lookup-or-create; the returned reference stays valid for the process
  // lifetime (node-based storage).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  // Zeroes every metric (benches and tests isolate runs with this; the
  // registry is process-wide).
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // std::map: node-based, so references survive later insertions.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

// Global enable flag (default on). Disabled, the macros below skip the
// atomic write entirely.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

}  // namespace tasklets::metrics

// Hot-path instrumentation: the handle is resolved once per call site.
#define TASKLETS_COUNT(name, n)                                            \
  do {                                                                     \
    if (::tasklets::metrics::enabled()) {                                  \
      static ::tasklets::metrics::Counter& tasklets_metric_ =              \
          ::tasklets::metrics::MetricsRegistry::instance().counter(name);  \
      tasklets_metric_.inc(n);                                             \
    }                                                                      \
  } while (0)

#define TASKLETS_GAUGE_SET(name, v)                                        \
  do {                                                                     \
    if (::tasklets::metrics::enabled()) {                                  \
      static ::tasklets::metrics::Gauge& tasklets_metric_ =                \
          ::tasklets::metrics::MetricsRegistry::instance().gauge(name);    \
      tasklets_metric_.set(v);                                             \
    }                                                                      \
  } while (0)

#define TASKLETS_OBSERVE(name, x)                                          \
  do {                                                                     \
    if (::tasklets::metrics::enabled()) {                                  \
      static ::tasklets::metrics::Histogram& tasklets_metric_ =            \
          ::tasklets::metrics::MetricsRegistry::instance().histogram(name); \
      tasklets_metric_.observe(x);                                         \
    }                                                                      \
  } while (0)

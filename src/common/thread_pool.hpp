// Fixed-size worker pool. Tasks run in submission order across the workers;
// the destructor drains nothing — pending tasks are discarded, running tasks
// are joined (shutdown of a distributed node abandons queued work, it does
// not stall on it).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tasklets {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { run(); });
    }
  }

  ~ThreadPool() { stop(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task) {
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_) return;
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  void stop() {
    {
      const std::scoped_lock lock(mutex_);
      if (stopping_) return;
      stopping_ = true;
      queue_.clear();
    }
    cv_.notify_all();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void run() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tasklets

#include "common/log.hpp"

#include <cstdio>

namespace tasklets {

namespace {
constexpr std::string_view level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

// Monotonic origin shared by every log line in the process.
const SteadyClock& process_clock() {
  static const SteadyClock clock;
  return clock;
}
}  // namespace

std::uint64_t log_thread_id() noexcept {
  static std::atomic<std::uint64_t> next{1};
  thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string format_record(const LogRecord& record) {
  char prefix[64];
  std::snprintf(prefix, sizeof prefix, "[%.*s] %.6f t%llu ",
                static_cast<int>(level_name(record.level).size()),
                level_name(record.level).data(), to_seconds(record.timestamp),
                static_cast<unsigned long long>(record.thread_id));
  std::string out = prefix;
  out += record.component;
  out += ": ";
  out += record.message;
  out += record.fields;
  return out;
}

void StderrSink::write(const LogRecord& record) {
  const std::string line = format_record(record);
  const std::scoped_lock lock(mutex_);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void RingBufferSink::write(const LogRecord& record) {
  std::string line = format_record(record);
  const std::scoped_lock lock(mutex_);
  lines_.push_back(std::move(line));
  if (lines_.size() > capacity_) lines_.pop_front();
}

std::vector<std::string> RingBufferSink::lines() const {
  const std::scoped_lock lock(mutex_);
  return {lines_.begin(), lines_.end()};
}

bool RingBufferSink::contains(std::string_view needle) const {
  const std::scoped_lock lock(mutex_);
  for (const std::string& line : lines_) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

void RingBufferSink::clear() {
  const std::scoped_lock lock(mutex_);
  lines_.clear();
}

Logger::Logger() : sink_(std::make_shared<StderrSink>()) {}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(std::shared_ptr<LogSink> sink) {
  if (sink == nullptr) sink = std::make_shared<StderrSink>();
  const std::scoped_lock lock(sink_mutex_);
  sink_ = std::move(sink);
}

std::shared_ptr<LogSink> Logger::sink() const {
  const std::scoped_lock lock(sink_mutex_);
  return sink_;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message, std::string_view fields) {
  if (!enabled(level)) return;
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.fields = fields;
  record.timestamp = process_clock().now();
  record.thread_id = log_thread_id();
  // Hold a reference, not the lock, while writing: sinks may be slow.
  sink()->write(record);
}

}  // namespace tasklets

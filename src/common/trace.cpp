#include "common/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

namespace tasklets {

namespace {
std::atomic<std::uint64_t> g_next_span{1};

void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}
}  // namespace

std::uint64_t next_span_id() noexcept {
  return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

TraceStore::TraceStore(std::size_t capacity) : capacity_(capacity) {}

void TraceStore::add(Span span) {
  const std::scoped_lock lock(mutex_);
  if (span.span_id == 0) span.span_id = next_span_id();
  if (observer_) observer_(span);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(span));
}

void TraceStore::set_observer(std::function<void(const Span&)> observer) {
  const std::scoped_lock lock(mutex_);
  observer_ = std::move(observer);
}

void TraceStore::instant(const TraceContext& ctx, std::string name, NodeId node,
                         TaskletId tasklet, SimTime at,
                         std::vector<std::pair<std::string, std::string>> args) {
  Span span;
  span.trace_id = ctx.trace_id;
  span.parent_span = ctx.parent_span;
  span.name = std::move(name);
  span.node = node;
  span.tasklet = tasklet;
  span.start = at;
  span.end = at;
  span.instant = true;
  span.args = std::move(args);
  add(std::move(span));
}

std::size_t TraceStore::size() const {
  const std::scoped_lock lock(mutex_);
  return spans_.size();
}

std::uint64_t TraceStore::dropped() const {
  const std::scoped_lock lock(mutex_);
  return dropped_;
}

std::vector<Span> TraceStore::all() const {
  const std::scoped_lock lock(mutex_);
  return spans_;
}

std::vector<Span> TraceStore::drain() {
  const std::scoped_lock lock(mutex_);
  std::vector<Span> out;
  out.swap(spans_);
  return out;
}

std::vector<Span> TraceStore::spans_for(TaskletId id) const {
  std::vector<Span> out;
  {
    const std::scoped_lock lock(mutex_);
    for (const Span& span : spans_) {
      if (span.tasklet == id) out.push_back(span);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start != b.start ? a.start < b.start : a.span_id < b.span_id;
  });
  return out;
}

void append_chrome_event(std::string& out, const Span& span) {
  char buf[96];
  out += "{\"name\":";
  append_json_string(out, span.name);
  out += ",\"cat\":\"tasklet\",\"ph\":";
  const double ts_us = static_cast<double>(span.start) / 1e3;
  if (span.instant) {
    std::snprintf(buf, sizeof buf, "\"i\",\"s\":\"g\",\"ts\":%.3f", ts_us);
  } else {
    const double dur_us = static_cast<double>(span.end - span.start) / 1e3;
    std::snprintf(buf, sizeof buf, "\"X\",\"ts\":%.3f,\"dur\":%.3f", ts_us,
                  dur_us);
  }
  out += buf;
  std::snprintf(buf, sizeof buf, ",\"pid\":1,\"tid\":%llu,\"args\":{",
                static_cast<unsigned long long>(span.node.value()));
  out += buf;
  out += "\"tasklet\":";
  append_json_string(out, span.tasklet.to_string());
  std::snprintf(buf, sizeof buf,
                ",\"trace\":%llu,\"span\":%llu,\"parent\":%llu",
                static_cast<unsigned long long>(span.trace_id),
                static_cast<unsigned long long>(span.span_id),
                static_cast<unsigned long long>(span.parent_span));
  out += buf;
  for (const auto& [key, value] : span.args) {
    out.push_back(',');
    append_json_string(out, key);
    out.push_back(':');
    append_json_string(out, value);
  }
  out += "}}";
}

std::string TraceStore::export_chrome_json() const {
  const std::vector<Span> spans = all();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    append_chrome_event(out, span);
  }
  out += "]}";
  return out;
}

ChromeTraceWriter::ChromeTraceWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) return;
  if (std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", file_) < 0) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::write(const Span& span) {
  if (file_ == nullptr || finished_) return;
  std::string event;
  event.reserve(192);
  if (written_ > 0) event.push_back(',');
  append_chrome_event(event, span);
  if (std::fputs(event.c_str(), file_) < 0) {
    std::fclose(file_);
    file_ = nullptr;
    return;
  }
  ++written_;
}

void ChromeTraceWriter::write_all(const std::vector<Span>& spans) {
  for (const Span& span : spans) write(span);
}

void ChromeTraceWriter::finish() {
  if (file_ == nullptr || finished_) {
    finished_ = true;
    return;
  }
  finished_ = true;
  std::fputs("]}", file_);
  std::fclose(file_);
  file_ = nullptr;
}

}  // namespace tasklets

// Minimal JSON value model + recursive-descent parser.
//
// The observability stack renders all of its JSON by hand (metrics, traces,
// admin responses, flight-recorder bundles); this is the matching read side,
// used by the trace-analysis engine and `taskletc analyze` to load those
// documents back. It is deliberately small: one Value variant, one tolerant
// parser with a depth cap, no serializer (writers keep hand-rendering).
//
// Tolerances: numbers parse via strtod (ints round-trip exactly up to 2^53,
// which covers every timestamp and id we emit), \uXXXX escapes decode to
// UTF-8, and object member order is preserved (duplicate keys keep both;
// find() returns the first).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"

namespace tasklets::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }

  // First member with `key`, or nullptr (also for non-objects).
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  // Typed accessors with fallback defaults — never throw.
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? number : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const noexcept;
  [[nodiscard]] std::uint64_t as_uint(std::uint64_t fallback = 0) const noexcept;
  [[nodiscard]] std::string_view as_string(
      std::string_view fallback = {}) const noexcept {
    return is_string() ? std::string_view(string) : fallback;
  }
};

// Parses one JSON document (trailing whitespace allowed, trailing garbage is
// an error). Nesting deeper than `max_depth` is rejected, not recursed into.
[[nodiscard]] Result<Value> parse(std::string_view text,
                                  std::size_t max_depth = 96);

}  // namespace tasklets::json

// Statistics helpers used by the benchmark harnesses and the broker's
// provider-performance tracking: running moments, exact-percentile samplers
// and a log-bucketed latency histogram.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tasklets {

// Welford running mean/variance. O(1) memory; numerically stable.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  // sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Keeps every sample; exact quantiles. Fine for per-experiment volumes.
class Sampler {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double quantile(double q) const;  // q in [0,1]
  [[nodiscard]] double p50() const { return quantile(0.50); }
  [[nodiscard]] double p95() const { return quantile(0.95); }
  [[nodiscard]] double p99() const { return quantile(0.99); }
  [[nodiscard]] double mean() const;
  void clear() noexcept { samples_.clear(); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Log-bucketed histogram for unbounded positive values (latencies in ns).
// Bucket i covers [2^(i/4), 2^((i+1)/4)): ~19% relative error per bucket.
class LogHistogram {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return total_; }
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] std::string summary() const;  // "p50=... p95=... p99=... max=..."

 private:
  static constexpr int kSubBuckets = 4;  // buckets per power of two
  static constexpr int kNumBuckets = 64 * kSubBuckets;
  [[nodiscard]] static int bucket_for(double x) noexcept;
  [[nodiscard]] static double bucket_lower(int i) noexcept;

  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(kNumBuckets, 0);
  std::size_t total_ = 0;
  double max_ = 0.0;
};

// Jain's fairness index over per-entity totals: 1.0 = perfectly fair.
[[nodiscard]] double jain_fairness(const std::vector<double>& xs) noexcept;

}  // namespace tasklets

// Declarative health / SLO rules over the metrics time-series layer.
//
// A rule names one series in a MetricsHistory and a condition; the engine is
// evaluated on the sampling cadence (sampler thread in the real runtime,
// per-tick event in the simulator) and tracks firing state across
// evaluations. Three rule kinds:
//
//   level — "p99_latency: broker.latency_ns.p99 > 5e9 for 5s"
//           the latest sample breaches the threshold, continuously for the
//           sustain duration ("for 0s" fires on the first breach).
//   jump  — "het_jump: broker.pool.heterogeneity jump > 200000 over 10s"
//           the series moved by more than the threshold across the window
//           (newest minus oldest sample inside it).
//   rate  — "reassigns: broker.straggler_reassigns rate > 2 over 5s"
//           the series' per-second rate across the window breaches.
//
// Firing emits a structured log line, bumps the "health.alerts_fired"
// counter, appends to the engine's alert log, and (when a TraceStore is
// attached) records a "health" instant so alerts land on the same timeline
// as the tasklet spans. Clearing updates the alert in place.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"
#include "common/metrics.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"

namespace tasklets::health {

struct HealthRule {
  enum class Kind { kLevel, kJump, kRate };
  enum class Op { kGt, kLt };

  std::string name;
  std::string series;
  Kind kind = Kind::kLevel;
  Op op = Op::kGt;
  double threshold = 0.0;
  SimTime sustain = 0;             // level: how long the breach must hold
  SimTime window = 5 * kSecond;    // jump/rate: lookback

  // Render back to the rule syntax (docs, admin endpoint).
  [[nodiscard]] std::string to_string() const;
};

// Parses the rule syntax described above. Durations accept ns/us/ms/s/m
// suffixes; a bare number means seconds.
[[nodiscard]] Result<HealthRule> parse_rule(std::string_view text);
[[nodiscard]] Result<SimTime> parse_duration(std::string_view text);

struct Alert {
  std::string rule;
  std::string series;
  double value = 0.0;       // the observed value that breached
  double threshold = 0.0;
  SimTime fired_at = 0;
  SimTime cleared_at = 0;   // meaningful only when !active
  bool active = true;
};

class HealthRuleEngine {
 public:
  explicit HealthRuleEngine(std::vector<HealthRule> rules,
                            TraceStore* trace = nullptr);

  // Evaluates every rule against `history` at time `now`; returns the
  // alerts that newly fired during this evaluation. Thread-safe.
  std::vector<Alert> evaluate(const metrics::MetricsHistory& history,
                              SimTime now);

  [[nodiscard]] std::vector<Alert> active_alerts() const;
  // Full fired-alert log, oldest first, capped at `kLogCapacity`.
  [[nodiscard]] std::vector<Alert> alert_log() const;
  [[nodiscard]] std::uint64_t fired_count() const;
  [[nodiscard]] const std::vector<HealthRule>& rules() const noexcept {
    return rules_;
  }

  static constexpr std::size_t kLogCapacity = 256;

 private:
  struct RuleState {
    SimTime breach_since = -1;  // first evaluation of the current breach run
    bool active = false;
    std::size_t log_index = SIZE_MAX;  // this firing's slot in log_
  };

  std::vector<HealthRule> rules_;
  TraceStore* trace_;
  mutable std::mutex mutex_;
  std::vector<RuleState> states_;
  std::vector<Alert> log_;
  std::uint64_t log_evicted_ = 0;  // log_ entries dropped by the cap
  std::uint64_t fired_ = 0;
};

}  // namespace tasklets::health

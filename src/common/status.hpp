// Status and Result<T>: lightweight error propagation for the Tasklets
// middleware. The middleware avoids exceptions on hot paths (scheduling,
// message handling, VM execution); fallible operations return Result<T>.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tasklets {

// Canonical error space shared by every module. Codes are coarse on purpose:
// fine-grained context travels in the message string.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,      // transient: peer offline, link down, no capacity
  kDeadlineExceeded, // QoC deadline or fuel budget exhausted
  kAborted,          // execution cancelled or superseded
  kDataLoss,         // corrupt frame / malformed bytecode
  kUnimplemented,
  kInternal,
};

[[nodiscard]] std::string_view to_string(StatusCode code) noexcept;

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() noexcept = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() noexcept { return {}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  // "code: message" rendering for logs and test failures.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

[[nodiscard]] inline Status make_error(StatusCode code, std::string message) {
  return Status{code, std::move(message)};
}

// Result<T>: either a value or a non-ok Status. A minimal std::expected
// stand-in with the accessors the codebase needs.
template <typename T>
class Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(rep_).is_ok()) {
      rep_ = Status{StatusCode::kInternal, "ok Status used as Result error"};
    }
  }

  [[nodiscard]] bool is_ok() const noexcept { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] const T& value() const& { return std::get<T>(rep_); }
  [[nodiscard]] T& value() & { return std::get<T>(rep_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(rep_)); }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(rep_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return is_ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace tasklets

// Propagate a non-ok Status from an expression producing Status.
#define TASKLETS_RETURN_IF_ERROR(expr)                    \
  do {                                                    \
    ::tasklets::Status status_macro_tmp_ = (expr);        \
    if (!status_macro_tmp_.is_ok()) return status_macro_tmp_; \
  } while (false)

// Bind `lhs` to the value of a Result-producing expression or propagate its
// Status. Usage: TASKLETS_ASSIGN_OR_RETURN(auto v, compute());
#define TASKLETS_ASSIGN_OR_RETURN(lhs, expr)          \
  auto TASKLETS_CONCAT_(result_tmp_, __LINE__) = (expr); \
  if (!TASKLETS_CONCAT_(result_tmp_, __LINE__).is_ok())  \
    return TASKLETS_CONCAT_(result_tmp_, __LINE__).status(); \
  lhs = std::move(TASKLETS_CONCAT_(result_tmp_, __LINE__)).value()

#define TASKLETS_CONCAT_INNER_(a, b) a##b
#define TASKLETS_CONCAT_(a, b) TASKLETS_CONCAT_INNER_(a, b)

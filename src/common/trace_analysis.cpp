#include "common/trace_analysis.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "common/json.hpp"
#include "common/metrics.hpp"

namespace tasklets::analysis {

namespace {

// Non-negative interval; a negative input means clock damage (chaos,
// dropped spans) — clamp to 0 and count it, never propagate negatives.
SimTime clamp_interval(SimTime from, SimTime to, std::uint32_t& anomalies) {
  if (to < from) {
    ++anomalies;
    return 0;
  }
  return to - from;
}

const std::string* find_arg(const Span& span, std::string_view key) {
  for (const auto& [name, value] : span.args) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string arg_or(const Span& span, std::string_view key,
                   std::string fallback = {}) {
  const std::string* value = find_arg(span, key);
  return value != nullptr ? *value : std::move(fallback);
}

// "tasklet-12" / "node-3" / bare "12" -> 12; 0 when unparseable.
std::uint64_t parse_id_value(std::string_view text) {
  const std::size_t dash = text.rfind('-');
  if (dash != std::string_view::npos) text.remove_prefix(dash + 1);
  if (text.empty()) return 0;
  char* end = nullptr;
  const std::string copy(text);
  const std::uint64_t raw = std::strtoull(copy.c_str(), &end, 10);
  return (end != nullptr && *end == '\0') ? raw : 0;
}

}  // namespace

std::string_view phase_name(Phase phase) noexcept {
  switch (phase) {
    case Phase::kSubmitWire: return "submit_wire";
    case Phase::kQueue: return "queue";
    case Phase::kSchedule: return "schedule";
    case Phase::kNetOut: return "net_out";
    case Phase::kExecOverhead: return "exec_overhead";
    case Phase::kVm: return "vm";
    case Phase::kNetBack: return "net_back";
    case Phase::kConclude: return "conclude";
    case Phase::kDeliver: return "deliver";
    case Phase::kUnattributed: return "unattributed";
  }
  return "?";
}

const SpanNode* TaskletTrace::first(std::string_view name) const noexcept {
  for (const SpanNode& node : nodes) {
    if (node.span.name == name) return &node;
  }
  return nullptr;
}

TaskletTrace build_tasklet_trace(std::vector<Span> spans) {
  TaskletTrace trace;
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    return a.start != b.start ? a.start < b.start : a.span_id < b.span_id;
  });

  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(spans.size());
  trace.nodes.reserve(spans.size());
  for (Span& span : spans) {
    if (!trace.id.valid()) trace.id = span.tasklet;
    if (span.span_id != 0 && !by_id.emplace(span.span_id, trace.nodes.size()).second) {
      ++trace.duplicates;  // span-id reuse: keep the first occurrence
      continue;
    }
    trace.nodes.push_back(SpanNode{std::move(span), {}});
  }
  for (std::size_t i = 0; i < trace.nodes.size(); ++i) {
    const std::uint64_t parent = trace.nodes[i].span.parent_span;
    if (parent == 0) {
      trace.roots.push_back(i);
      continue;
    }
    const auto it = by_id.find(parent);
    if (it == by_id.end() || it->second == i) {
      // Parent never arrived (dropped / capacity-capped): the node becomes
      // an extra root so the tree stays walkable.
      ++trace.orphans;
      trace.roots.push_back(i);
      continue;
    }
    trace.nodes[it->second].children.push_back(i);
  }
  return trace;
}

PhaseBreakdown analyze_tasklet(const TaskletTrace& trace) {
  PhaseBreakdown out;
  out.tasklet = trace.id;
  out.anomalies = trace.duplicates + trace.orphans;
  if (trace.nodes.empty()) return out;

  // End-to-end envelope: the consumer's root "submit" span, or (degraded)
  // the hull of whatever spans survived.
  const SpanNode* root = nullptr;
  for (const SpanNode& node : trace.nodes) {
    if (node.span.name == "submit" && !node.span.instant) {
      root = &node;
      break;
    }
  }
  SimTime t0 = 0;
  SimTime t1 = 0;
  if (root != nullptr) {
    t0 = root->span.start;
    t1 = root->span.end;
    out.status = arg_or(root->span, "status");
  } else {
    t0 = trace.nodes.front().span.start;
    t1 = t0;
    for (const SpanNode& node : trace.nodes) t1 = std::max(t1, node.span.end);
    ++out.anomalies;
  }
  out.total = clamp_interval(t0, t1, out.anomalies);

  const SpanNode* queue = trace.first("queue");
  const SpanNode* report = trace.first("report");
  if (out.status.empty() && report != nullptr) {
    out.status = arg_or(report->span, "status");
  }

  // Attempts with their provider-side children.
  for (const SpanNode& node : trace.nodes) {
    if (node.span.name != "attempt" || node.span.instant) continue;
    AttemptView view;
    view.span_id = node.span.span_id;
    view.provider = arg_or(node.span, "provider");
    view.status = arg_or(node.span, "status");
    view.start = node.span.start;
    view.end = std::max(node.span.end, node.span.start);
    for (const std::size_t child : node.children) {
      const Span& c = trace.nodes[child].span;
      if (c.name == "execute" && !c.instant && !view.has_execute) {
        view.has_execute = true;
        view.exec_start = c.start;
        view.exec_end = std::max(c.end, c.start);
      } else if (c.name == "vm" && !c.instant && view.vm == 0) {
        view.vm = clamp_interval(c.start, c.end, out.anomalies);
      }
    }
    out.attempts.push_back(std::move(view));
  }

  // The winning attempt: the ok-status attempt that finished last (its
  // result is what concluded the tasklet); with no ok attempt (failed /
  // abandoned tasklets) the last-finishing attempt anchors the timeline.
  AttemptView* winner = nullptr;
  for (AttemptView& view : out.attempts) {
    if (view.status == "ok" && (winner == nullptr || view.end > winner->end)) {
      winner = &view;
    }
  }
  if (winner == nullptr) {
    for (AttemptView& view : out.attempts) {
      if (winner == nullptr || view.end > winner->end) winner = &view;
    }
  }
  if (winner != nullptr) {
    winner->winner = true;
    out.provider = winner->provider;
  }

  auto& phases = out.phases;
  auto set = [&](Phase p, SimTime v) { phases[phase_index(p)] = v; };

  if (queue != nullptr) {
    set(Phase::kSubmitWire, clamp_interval(t0, queue->span.start, out.anomalies));
    set(Phase::kQueue,
        clamp_interval(queue->span.start, queue->span.end, out.anomalies));
  }

  SimTime anchor = queue != nullptr ? queue->span.end : t0;  // timeline cursor
  if (winner != nullptr) {
    set(Phase::kSchedule, clamp_interval(anchor, winner->start, out.anomalies));
    if (winner->has_execute) {
      const SimTime exec =
          clamp_interval(winner->exec_start, winner->exec_end, out.anomalies);
      SimTime vm = winner->vm;
      if (vm > exec) {
        ++out.anomalies;  // vm window leaked outside its execute span
        vm = exec;
      }
      set(Phase::kNetOut,
          clamp_interval(winner->start, winner->exec_start, out.anomalies));
      set(Phase::kVm, vm);
      set(Phase::kExecOverhead, exec - vm);
      set(Phase::kNetBack,
          clamp_interval(winner->exec_end, winner->end, out.anomalies));
    } else {
      // Provider-side spans dropped: the whole attempt reads as net.
      ++out.anomalies;
      set(Phase::kNetOut, clamp_interval(winner->start, winner->end, out.anomalies));
    }
    anchor = std::max(anchor, winner->end);
  }
  if (report != nullptr && report->span.start >= anchor) {
    set(Phase::kConclude, report->span.start - anchor);
    set(Phase::kDeliver, clamp_interval(report->span.start, t1, out.anomalies));
  } else {
    if (report != nullptr) ++out.anomalies;  // report precedes its anchor
    set(Phase::kDeliver, clamp_interval(anchor, t1, out.anomalies));
  }

  // Off-path overhead: wall time of every losing attempt.
  for (const AttemptView& view : out.attempts) {
    if (!view.winner) out.retry_overhead += view.duration();
  }

  SimTime named = 0;
  for (std::size_t i = 0; i + 1 < kPhaseCount; ++i) named += phases[i];
  if (named <= out.total) {
    set(Phase::kUnattributed, out.total - named);
  } else {
    // Clamping over-attributed a damaged trace; scale is unknowable, so
    // report zero residual and flag it.
    ++out.anomalies;
    set(Phase::kUnattributed, 0);
    out.total = named;
  }

  // Memoized completions (PR 8 exactness fix): the broker answers from the
  // memo table with zero provider attempts, so there is no winning attempt
  // to demand — the "memo_hit" instant is the execution record and every
  // execution phase is legitimately zero-length.
  const SpanNode* memo = trace.first("memo_hit");
  if (memo != nullptr && out.attempts.empty()) {
    out.memoized = true;
    if (out.provider.empty()) out.provider = arg_or(memo->span, "provider");
  }
  out.complete =
      root != nullptr && report != nullptr &&
      (out.memoized ||
       (winner != nullptr && winner->has_execute && winner->vm > 0));
  return out;
}

std::vector<CriticalStep> critical_path(const TaskletTrace& trace) {
  const PhaseBreakdown breakdown = analyze_tasklet(trace);
  std::vector<CriticalStep> steps;
  const SpanNode* root = trace.first("submit");
  const SpanNode* queue = trace.first("queue");
  const SpanNode* report = trace.first("report");

  if (root != nullptr && queue != nullptr &&
      queue->span.start >= root->span.start) {
    steps.push_back({"submit_wire", root->span.node.to_string(), "",
                     root->span.start, queue->span.start, true});
  }
  if (queue != nullptr) {
    steps.push_back({"queue", queue->span.node.to_string(), "",
                     queue->span.start, queue->span.end, true});
  }
  std::size_t index = 0;
  for (const AttemptView& view : breakdown.attempts) {
    ++index;
    CriticalStep step;
    step.label = "attempt#" + std::to_string(index);
    step.node = view.provider;
    step.detail = view.status;
    step.start = view.start;
    step.end = view.end;
    step.on_winning_path = view.winner;
    steps.push_back(std::move(step));
    if (view.winner && view.has_execute) {
      steps.push_back({"execute", view.provider, "", view.exec_start,
                       view.exec_end, true});
      if (view.vm > 0) {
        steps.push_back({"vm", view.provider, "", view.exec_start,
                         view.exec_start + view.vm, true});
      }
    }
  }
  if (report != nullptr) {
    steps.push_back({"report", report->span.node.to_string(),
                     arg_or(report->span, "status"), report->span.start,
                     report->span.start, true});
  }
  if (root != nullptr) {
    const SimTime from =
        report != nullptr ? report->span.start : root->span.end;
    if (root->span.end >= from) {
      steps.push_back({"deliver", root->span.node.to_string(), "", from,
                       root->span.end, true});
    }
  }
  return steps;
}

double PhaseAggregate::quantile(double q) const {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(std::llround(pos));
  return sorted[std::min(idx, sorted.size() - 1)];
}

void WaitGraph::add(const PhaseBreakdown& breakdown) {
  ++tasklets;
  if (breakdown.complete) ++complete;
  anomalies += breakdown.anomalies;
  total += breakdown.total;
  retry_overhead += breakdown.retry_overhead;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    phases[i].total += breakdown.phases[i];
    phases[i].samples.push_back(static_cast<double>(breakdown.phases[i]));
  }
  ++statuses[breakdown.status.empty() ? "?" : breakdown.status];
  for (const AttemptView& view : breakdown.attempts) {
    ProviderAggregate& agg =
        providers[view.provider.empty() ? "?" : view.provider];
    ++agg.attempts;
    view.winner ? ++agg.wins : ++agg.losses;
    agg.busy += view.duration();
    if (view.has_execute) {
      const SimTime exec = view.exec_end > view.exec_start
                               ? view.exec_end - view.exec_start
                               : 0;
      const SimTime vm = std::min(view.vm, exec);
      agg.vm += vm;
      agg.overhead += exec - vm;
      agg.net += view.duration() > exec ? view.duration() - exec : 0;
    } else {
      agg.net += view.duration();
    }
  }
  slowest.emplace_back(breakdown.tasklet, breakdown.total);
  std::sort(slowest.begin(), slowest.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (slowest.size() > kSlowestKept) slowest.resize(kSlowestKept);
}

WaitGraph analyze_all(const std::vector<Span>& spans) {
  std::map<std::uint64_t, std::vector<Span>> by_tasklet;
  for (const Span& span : spans) {
    if (!span.tasklet.valid()) continue;  // pool-level events (health, ...)
    by_tasklet[span.tasklet.value()].push_back(span);
  }
  WaitGraph graph;
  for (auto& [id, group] : by_tasklet) {
    graph.add(analyze_tasklet(build_tasklet_trace(std::move(group))));
  }
  return graph;
}

std::string format_duration(SimTime ns) {
  char buf[32];
  const double v = static_cast<double>(ns);
  if (ns < 10 * kMicrosecond) {
    std::snprintf(buf, sizeof buf, "%.0fns", v);
  } else if (ns < 10 * kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.1fus", v / 1e3);
  } else if (ns < 10 * kSecond) {
    std::snprintf(buf, sizeof buf, "%.1fms", v / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fs", v / 1e9);
  }
  return buf;
}

std::string breakdown_json(const PhaseBreakdown& breakdown) {
  std::string out = "{\"tasklet\":";
  metrics::json_append_escaped(out, breakdown.tasklet.to_string());
  out += ",\"status\":";
  metrics::json_append_escaped(out, breakdown.status);
  out += ",\"provider\":";
  metrics::json_append_escaped(out, breakdown.provider);
  out += ",\"total_ns\":" + std::to_string(breakdown.total);
  out += ",\"attributed_ns\":" + std::to_string(breakdown.attributed());
  out += ",\"retry_overhead_ns\":" + std::to_string(breakdown.retry_overhead);
  out += ",\"anomalies\":" + std::to_string(breakdown.anomalies);
  out += ",\"complete\":";
  out += breakdown.complete ? "true" : "false";
  out += ",\"memoized\":";
  out += breakdown.memoized ? "true" : "false";
  out += ",\"phases\":{";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    if (i > 0) out += ",";
    metrics::json_append_escaped(out, phase_name(static_cast<Phase>(i)));
    out += ":" + std::to_string(breakdown.phases[i]);
  }
  out += "},\"attempts\":[";
  bool first = true;
  for (const AttemptView& view : breakdown.attempts) {
    if (!first) out += ",";
    first = false;
    out += "{\"provider\":";
    metrics::json_append_escaped(out, view.provider);
    out += ",\"status\":";
    metrics::json_append_escaped(out, view.status);
    out += ",\"start\":" + std::to_string(view.start);
    out += ",\"end\":" + std::to_string(view.end);
    out += ",\"vm_ns\":" + std::to_string(view.vm);
    out += ",\"winner\":";
    out += view.winner ? "true" : "false";
    out += "}";
  }
  out += "]}";
  return out;
}

std::string critical_path_report(const TaskletTrace& trace) {
  const PhaseBreakdown breakdown = analyze_tasklet(trace);
  const std::vector<CriticalStep> steps = critical_path(trace);
  SimTime t0 = 0;
  if (const SpanNode* root = trace.first("submit"); root != nullptr) {
    t0 = root->span.start;
  } else if (!trace.nodes.empty()) {
    t0 = trace.nodes.front().span.start;
  }

  char line[192];
  std::snprintf(line, sizeof line,
                "critical path %s: %s end-to-end, status=%s, %zu attempt(s)%s\n",
                breakdown.tasklet.to_string().c_str(),
                format_duration(breakdown.total).c_str(),
                breakdown.status.empty() ? "?" : breakdown.status.c_str(),
                breakdown.attempts.size(),
                breakdown.anomalies > 0 ? " [degraded]" : "");
  std::string out = line;
  for (const CriticalStep& step : steps) {
    std::snprintf(line, sizeof line, "  %c +%-10s %-12s %10s  %s %s\n",
                  step.on_winning_path ? '*' : ' ',
                  format_duration(step.start - t0).c_str(), step.label.c_str(),
                  format_duration(step.end - step.start).c_str(),
                  step.node.c_str(), step.detail.c_str());
    out += line;
  }
  std::snprintf(line, sizeof line,
                "  phases: queue=%s sched=%s net=%s exec_ovh=%s vm=%s "
                "deliver=%s unattributed=%s  retry_overhead=%s\n",
                format_duration(breakdown.phase(Phase::kQueue)).c_str(),
                format_duration(breakdown.phase(Phase::kSchedule)).c_str(),
                format_duration(breakdown.phase(Phase::kNetOut) +
                                breakdown.phase(Phase::kNetBack)).c_str(),
                format_duration(breakdown.phase(Phase::kExecOverhead)).c_str(),
                format_duration(breakdown.phase(Phase::kVm)).c_str(),
                format_duration(breakdown.phase(Phase::kConclude) +
                                breakdown.phase(Phase::kDeliver)).c_str(),
                format_duration(breakdown.phase(Phase::kUnattributed)).c_str(),
                format_duration(breakdown.retry_overhead).c_str());
  out += line;
  return out;
}

std::string wait_graph_report(const WaitGraph& graph) {
  char line[192];
  std::string out;
  std::snprintf(line, sizeof line,
                "wait-graph: %zu tasklet(s), %zu complete, %" PRIu64
                " anomalies, %s total on-path, %s retry overhead\n",
                graph.tasklets, graph.complete,
                static_cast<std::uint64_t>(graph.anomalies),
                format_duration(graph.total).c_str(),
                format_duration(graph.retry_overhead).c_str());
  out += line;
  std::snprintf(line, sizeof line, "%-14s %9s %7s %10s %10s %10s\n", "PHASE",
                "TOTAL", "SHARE", "P50", "P95", "P99");
  out += line;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseAggregate& agg = graph.phases[i];
    const double share =
        graph.total > 0
            ? 100.0 * static_cast<double>(agg.total) / static_cast<double>(graph.total)
            : 0.0;
    std::snprintf(
        line, sizeof line, "%-14s %9s %6.1f%% %10s %10s %10s\n",
        std::string(phase_name(static_cast<Phase>(i))).c_str(),
        format_duration(agg.total).c_str(), share,
        format_duration(static_cast<SimTime>(agg.quantile(0.5))).c_str(),
        format_duration(static_cast<SimTime>(agg.quantile(0.95))).c_str(),
        format_duration(static_cast<SimTime>(agg.quantile(0.99))).c_str());
    out += line;
  }
  std::snprintf(line, sizeof line, "%-14s %8s %5s %5s %10s %10s %10s %10s\n",
                "PROVIDER", "ATTEMPTS", "WINS", "LOSS", "BUSY", "VM", "NET",
                "OVERHEAD");
  out += line;
  for (const auto& [name, agg] : graph.providers) {
    std::snprintf(line, sizeof line,
                  "%-14s %8" PRIu64 " %5" PRIu64 " %5" PRIu64
                  " %10s %10s %10s %10s\n",
                  name.c_str(), agg.attempts, agg.wins, agg.losses,
                  format_duration(agg.busy).c_str(),
                  format_duration(agg.vm).c_str(),
                  format_duration(agg.net).c_str(),
                  format_duration(agg.overhead).c_str());
    out += line;
  }
  out += "status:";
  for (const auto& [status, count] : graph.statuses) {
    std::snprintf(line, sizeof line, " %s=%" PRIu64, status.c_str(), count);
    out += line;
  }
  out += "\nslowest:";
  for (const auto& [id, latency] : graph.slowest) {
    std::snprintf(line, sizeof line, " %s(%s)", id.to_string().c_str(),
                  format_duration(latency).c_str());
    out += line;
  }
  out += "\n";
  return out;
}

std::string wait_graph_diff(const WaitGraph& a, const WaitGraph& b) {
  char line[192];
  std::string out;
  const double mean_a =
      a.tasklets > 0 ? static_cast<double>(a.total) / static_cast<double>(a.tasklets) : 0;
  const double mean_b =
      b.tasklets > 0 ? static_cast<double>(b.total) / static_cast<double>(b.tasklets) : 0;
  std::snprintf(line, sizeof line,
                "A/B: %zu vs %zu tasklet(s), mean latency %s vs %s (%+.1f%%)\n",
                a.tasklets, b.tasklets,
                format_duration(static_cast<SimTime>(mean_a)).c_str(),
                format_duration(static_cast<SimTime>(mean_b)).c_str(),
                mean_a > 0 ? 100.0 * (mean_b - mean_a) / mean_a : 0.0);
  out += line;
  std::snprintf(line, sizeof line, "%-14s %8s %8s %8s | %10s %10s %8s\n",
                "PHASE", "SHARE(A)", "SHARE(B)", "DELTA", "P95(A)", "P95(B)",
                "DELTA");
  out += line;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const double share_a =
        a.total > 0 ? 100.0 * static_cast<double>(a.phases[i].total) /
                          static_cast<double>(a.total)
                    : 0.0;
    const double share_b =
        b.total > 0 ? 100.0 * static_cast<double>(b.phases[i].total) /
                          static_cast<double>(b.total)
                    : 0.0;
    const double p95_a = a.phases[i].quantile(0.95);
    const double p95_b = b.phases[i].quantile(0.95);
    const double p95_delta = p95_a > 0 ? 100.0 * (p95_b - p95_a) / p95_a : 0.0;
    std::snprintf(line, sizeof line,
                  "%-14s %7.1f%% %7.1f%% %+7.1f%% | %10s %10s %+7.1f%%\n",
                  std::string(phase_name(static_cast<Phase>(i))).c_str(),
                  share_a, share_b, share_b - share_a,
                  format_duration(static_cast<SimTime>(p95_a)).c_str(),
                  format_duration(static_cast<SimTime>(p95_b)).c_str(),
                  p95_delta);
    out += line;
  }
  return out;
}

Result<std::vector<Span>> parse_trace_json(std::string_view text) {
  TASKLETS_ASSIGN_OR_RETURN(const json::Value root, json::parse(text));
  const json::Value* events = root.find("traceEvents");
  if (events == nullptr) {
    // Flight-recorder bundle: the Chrome document nests under "trace".
    if (const json::Value* trace = root.find("trace"); trace != nullptr) {
      events = trace->find("traceEvents");
    }
  }
  if (events == nullptr || !events->is_array()) {
    return make_error(StatusCode::kDataLoss,
                      "no traceEvents array (not a trace export or bundle)");
  }
  std::vector<Span> spans;
  spans.reserve(events->array.size());
  for (const json::Value& event : events->array) {
    if (!event.is_object()) continue;
    const json::Value* ph = event.find("ph");
    if (ph == nullptr || !ph->is_string()) continue;
    Span span;
    if (ph->string == "i") {
      span.instant = true;
    } else if (ph->string != "X") {
      continue;  // metadata / flow events from other tools
    }
    if (const json::Value* name = event.find("name"); name != nullptr) {
      span.name = name->string;
    }
    const json::Value* ts = event.find("ts");
    if (ts == nullptr || !ts->is_number()) continue;
    span.start = static_cast<SimTime>(std::llround(ts->number * 1e3));
    const json::Value* dur = event.find("dur");
    span.end = span.instant || dur == nullptr
                   ? span.start
                   : span.start + static_cast<SimTime>(
                                      std::llround(dur->as_number() * 1e3));
    if (const json::Value* tid = event.find("tid"); tid != nullptr) {
      span.node = NodeId{tid->as_uint()};
    }
    if (const json::Value* args = event.find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->object) {
        if (key == "tasklet") {
          span.tasklet = TaskletId{parse_id_value(value.as_string())};
        } else if (key == "trace") {
          span.trace_id = value.as_uint();
        } else if (key == "span") {
          span.span_id = value.as_uint();
        } else if (key == "parent") {
          span.parent_span = value.as_uint();
        } else if (value.is_string()) {
          span.args.emplace_back(key, value.string);
        }
      }
    }
    spans.push_back(std::move(span));
  }
  return spans;
}

}  // namespace tasklets::analysis

// Minimal leveled logger. Thread-safe, printf-free (streams into a single
// write), and cheap when the level is disabled. Benchmarks run with the
// logger set to kWarn so logging never perturbs measurements.
#pragma once

#include <atomic>
#include <sstream>
#include <string>
#include <string_view>

namespace tasklets {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) noexcept
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().write(level_, component_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace tasklets

// Usage: TASKLETS_LOG(kInfo, "broker") << "provider " << id << " joined";
#define TASKLETS_LOG(level, component)                                     \
  if (!::tasklets::Logger::instance().enabled(::tasklets::LogLevel::level)) \
    ;                                                                      \
  else                                                                     \
    ::tasklets::detail::LogLine(::tasklets::LogLevel::level, (component))

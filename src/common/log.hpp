// Minimal leveled logger. Thread-safe, printf-free (streams into a single
// write), and cheap when the level is disabled. Benchmarks run with the
// logger set to kWarn so logging never perturbs measurements.
//
// Every line is stamped with a monotonic timestamp (ns since process start)
// and a small per-thread id, carries optional structured key=value fields
// (LogLine::kv), and goes to a pluggable LogSink — stderr by default, a
// RingBufferSink in tests that assert on log output.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace tasklets {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// One log line, fully structured: sinks decide how to render it.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string_view component;
  std::string_view message;
  std::string_view fields;   // pre-rendered " key=value key=value" suffix
  SimTime timestamp = 0;     // monotonic ns since process start
  std::uint64_t thread_id = 0;
};

// "[WARN ] 1.234567 t3 broker: message key=value"
[[nodiscard]] std::string format_record(const LogRecord& record);

class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void write(const LogRecord& record) = 0;
};

// Default sink: formatted lines to stderr, serialized by an internal mutex.
class StderrSink final : public LogSink {
 public:
  void write(const LogRecord& record) override;

 private:
  std::mutex mutex_;
};

// Test sink: retains the last `capacity` formatted lines.
class RingBufferSink final : public LogSink {
 public:
  explicit RingBufferSink(std::size_t capacity = 1024) : capacity_(capacity) {}

  void write(const LogRecord& record) override;
  [[nodiscard]] std::vector<std::string> lines() const;
  [[nodiscard]] bool contains(std::string_view needle) const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::deque<std::string> lines_;
};

// Fan-out sink: forwards every record to each attached sink. Used to keep
// the default stderr sink while also capturing into a RingBufferSink for the
// admin `logs` command and flight-recorder bundles.
class TeeSink final : public LogSink {
 public:
  explicit TeeSink(std::vector<std::shared_ptr<LogSink>> sinks)
      : sinks_(std::move(sinks)) {}

  void write(const LogRecord& record) override {
    for (const auto& sink : sinks_) {
      if (sink != nullptr) sink->write(record);
    }
  }

 private:
  std::vector<std::shared_ptr<LogSink>> sinks_;
};

// Small dense thread id for log lines (1, 2, ... in first-log order).
[[nodiscard]] std::uint64_t log_thread_id() noexcept;

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) noexcept {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const noexcept {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  // Replaces the sink; pass nullptr to restore the default stderr sink.
  void set_sink(std::shared_ptr<LogSink> sink);
  [[nodiscard]] std::shared_ptr<LogSink> sink() const;

  void write(LogLevel level, std::string_view component, std::string_view message,
             std::string_view fields = {});

 private:
  Logger();
  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  mutable std::mutex sink_mutex_;
  std::shared_ptr<LogSink> sink_;
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) noexcept
      : level_(level), component_(component) {}
  ~LogLine() {
    Logger::instance().write(level_, component_, stream_.str(), fields_.str());
  }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

  // Structured field: rendered as " key=value" after the message.
  template <typename T>
  LogLine& kv(std::string_view key, const T& value) {
    fields_ << ' ' << key << '=' << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
  std::ostringstream fields_;
};
}  // namespace detail

}  // namespace tasklets

// Usage: TASKLETS_LOG(kInfo, "broker") << "provider " << id << " joined";
//        TASKLETS_LOG(kInfo, "broker").kv("provider", id) << "joined";
#define TASKLETS_LOG(level, component)                                     \
  if (!::tasklets::Logger::instance().enabled(::tasklets::LogLevel::level)) \
    ;                                                                      \
  else                                                                     \
    ::tasklets::detail::LogLine(::tasklets::LogLevel::level, (component))

// Distributed tasklet tracing.
//
// A TraceContext (trace id + parent span id) rides on the wire protocol
// (SubmitTasklet / AssignTasklet), so every hop of a tasklet's lifecycle —
// consumer submit, broker queue wait and schedule decision, provider
// dispatch, TVM execution, result return, plus retry/migration/reassignment
// events under faults — lands as a Span in a shared TraceStore. The store is
// queryable by tasklet id and exports Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto.
//
// Actors hold a nullable TraceStore*: tracing off is a null check per hop.
// Span ids come from a process-wide atomic so parent/child links are unique
// across every node of one system. Trace ids are the tasklet id value, which
// is what makes the store queryable by tasklet without an extra index.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.hpp"
#include "common/ids.hpp"

namespace tasklets {

// Carried in wire messages; 0/0 means "no trace" (tracing disabled at the
// sender, or a legacy frame).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  [[nodiscard]] constexpr bool active() const noexcept { return trace_id != 0; }
  friend constexpr bool operator==(const TraceContext&,
                                   const TraceContext&) noexcept = default;
};

// Process-wide span id source; never returns 0.
[[nodiscard]] std::uint64_t next_span_id() noexcept;

// One completed span or instant event. `instant` events carry a point in
// time (end == start); complete spans carry a duration.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::string name;      // taxonomy: submit/queue/schedule/attempt/execute/...
  NodeId node;           // emitting node (rendered as the Chrome "tid")
  TaskletId tasklet;
  SimTime start = 0;
  SimTime end = 0;
  bool instant = false;
  std::vector<std::pair<std::string, std::string>> args;
};

// Thread-safe append-only span collector with a capacity cap (spans beyond
// the cap are counted, not stored, so long sweeps cannot exhaust memory).
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity = 1u << 20);

  void add(Span span);
  // Convenience for instant events.
  void instant(const TraceContext& ctx, std::string name, NodeId node,
               TaskletId tasklet, SimTime at,
               std::vector<std::pair<std::string, std::string>> args = {});

  // Observer called for *every* added span (with its final span id), even
  // ones the capacity cap drops from storage — how the flight recorder keeps
  // a recent-span ring without raising the store's cap. Runs under the store
  // mutex: must be cheap and must not call back into this store. Pass
  // nullptr to detach (required before the observer's owner is destroyed).
  void set_observer(std::function<void(const Span&)> observer);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::vector<Span> all() const;
  // Removes and returns the buffered spans (the dropped counter is kept, but
  // the freed capacity accepts new spans again). Incremental exporters call
  // this periodically so long runs stay memory-bounded.
  [[nodiscard]] std::vector<Span> drain();
  // Spans of one tasklet, ordered by (start, span id) — causal order for
  // spans emitted against one runtime clock.
  [[nodiscard]] std::vector<Span> spans_for(TaskletId id) const;

  // Chrome trace_event JSON ("X" complete spans, "i" instant events, ts/dur
  // in microseconds). Loadable in chrome://tracing and Perfetto.
  [[nodiscard]] std::string export_chrome_json() const;

 private:
  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::vector<Span> spans_;
  std::uint64_t dropped_ = 0;
  std::function<void(const Span&)> observer_;
};

// Renders one span as a Chrome trace_event object (no surrounding commas).
void append_chrome_event(std::string& out, const Span& span);

// Incremental Chrome trace_event writer: streams events to a file as they
// are handed over instead of buffering the whole store in memory. The file
// is valid JSON once finish() (or the destructor) closes it. Write failures
// flip ok() false and turn later writes into no-ops.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(const std::string& path);
  ~ChromeTraceWriter();

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  void write(const Span& span);
  void write_all(const std::vector<Span>& spans);
  void finish();

  [[nodiscard]] bool ok() const noexcept { return file_ != nullptr; }
  [[nodiscard]] std::size_t written() const noexcept { return written_; }

 private:
  std::FILE* file_ = nullptr;
  std::size_t written_ = 0;
  bool finished_ = false;
};

}  // namespace tasklets

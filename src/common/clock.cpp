#include "common/clock.hpp"

#include <cmath>
#include <cstdio>

namespace tasklets {

std::string format_duration(SimTime t) {
  char buf[64];
  const double abs_t = std::abs(static_cast<double>(t));
  if (abs_t >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof buf, "%.3f s", to_seconds(t));
  } else if (abs_t >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_millis(t));
  } else if (abs_t >= static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof buf, "%.3f us",
                  static_cast<double>(t) / static_cast<double>(kMicrosecond));
  } else {
    std::snprintf(buf, sizeof buf, "%lld ns", static_cast<long long>(t));
  }
  return buf;
}

}  // namespace tasklets

#include "common/json.hpp"

#include <cmath>
#include <cstdlib>

namespace tasklets::json {

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t max_depth;

  [[nodiscard]] bool done() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }

  void skip_ws() {
    while (!done()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  Status error(std::string message) const {
    return make_error(StatusCode::kDataLoss,
                      message + " at offset " + std::to_string(pos));
  }

  bool consume(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  Status parse_string_into(std::string& out) {
    if (done() || peek() != '"') return error("expected string");
    ++pos;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return Status::ok();
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (done()) break;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return error("bad \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as two 3-byte sequences; our writers never emit them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return error("bad escape");
      }
    }
    return error("unterminated string");
  }

  Status parse_value(Value& out, std::size_t depth) {
    if (depth > max_depth) return error("nesting too deep");
    skip_ws();
    if (done()) return error("unexpected end of input");
    const char c = peek();
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string_into(out.string);
    }
    if (consume("true")) {
      out.kind = Value::Kind::kBool;
      out.boolean = true;
      return Status::ok();
    }
    if (consume("false")) {
      out.kind = Value::Kind::kBool;
      out.boolean = false;
      return Status::ok();
    }
    if (consume("null")) {
      out.kind = Value::Kind::kNull;
      return Status::ok();
    }
    return parse_number(out);
  }

  Status parse_number(Value& out) {
    const std::size_t start = pos;
    if (!done() && (peek() == '-' || peek() == '+')) ++pos;
    bool digits = false;
    auto eat_digits = [&] {
      while (!done() && peek() >= '0' && peek() <= '9') {
        ++pos;
        digits = true;
      }
    };
    eat_digits();
    if (!done() && peek() == '.') {
      ++pos;
      eat_digits();
    }
    if (digits && !done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '-' || peek() == '+')) ++pos;
      eat_digits();
    }
    if (!digits) return error("expected value");
    const std::string lexeme(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(lexeme.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return error("bad number");
    }
    out.kind = Value::Kind::kNumber;
    out.number = v;
    return Status::ok();
  }

  Status parse_array(Value& out, std::size_t depth) {
    ++pos;  // '['
    out.kind = Value::Kind::kArray;
    skip_ws();
    if (!done() && peek() == ']') {
      ++pos;
      return Status::ok();
    }
    while (true) {
      Value element;
      TASKLETS_RETURN_IF_ERROR(parse_value(element, depth + 1));
      out.array.push_back(std::move(element));
      skip_ws();
      if (done()) return error("unterminated array");
      const char c = text[pos++];
      if (c == ']') return Status::ok();
      if (c != ',') return error("expected ',' or ']'");
    }
  }

  Status parse_object(Value& out, std::size_t depth) {
    ++pos;  // '{'
    out.kind = Value::Kind::kObject;
    skip_ws();
    if (!done() && peek() == '}') {
      ++pos;
      return Status::ok();
    }
    while (true) {
      skip_ws();
      std::string key;
      TASKLETS_RETURN_IF_ERROR(parse_string_into(key));
      skip_ws();
      if (done() || text[pos++] != ':') return error("expected ':'");
      Value member;
      TASKLETS_RETURN_IF_ERROR(parse_value(member, depth + 1));
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (done()) return error("unterminated object");
      const char c = text[pos++];
      if (c == '}') return Status::ok();
      if (c != ',') return error("expected ',' or '}'");
    }
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [name, member] : object) {
    if (name == key) return &member;
  }
  return nullptr;
}

std::int64_t Value::as_int(std::int64_t fallback) const noexcept {
  if (!is_number()) return fallback;
  return static_cast<std::int64_t>(std::llround(number));
}

std::uint64_t Value::as_uint(std::uint64_t fallback) const noexcept {
  if (!is_number() || number < 0) return fallback;
  return static_cast<std::uint64_t>(std::llround(number));
}

Result<Value> parse(std::string_view text, std::size_t max_depth) {
  Parser parser{text, 0, max_depth};
  Value root;
  TASKLETS_RETURN_IF_ERROR(parser.parse_value(root, 0));
  parser.skip_ws();
  if (!parser.done()) return parser.error("trailing garbage");
  return root;
}

}  // namespace tasklets::json

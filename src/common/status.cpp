#include "common/status.hpp"

namespace tasklets {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{tasklets::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace tasklets

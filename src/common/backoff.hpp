// Jittered exponential backoff for at-least-once retry loops (consumer
// resubmission, provider registration). Header-only; delays are SimTime so
// the same policy runs under the simulator's virtual clock and the threaded
// runtime's wall clock.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/clock.hpp"
#include "common/rng.hpp"

namespace tasklets {

struct BackoffConfig {
  SimTime base = 100 * kMillisecond;  // first delay
  SimTime max = 10 * kSecond;        // cap after repeated growth
  double multiplier = 2.0;
  // Each delay is scaled by a uniform factor in [1 - jitter, 1 + jitter] so
  // a fleet of retriers decorrelates instead of thundering in lockstep.
  double jitter = 0.2;
};

class ExponentialBackoff {
 public:
  ExponentialBackoff() = default;
  explicit ExponentialBackoff(BackoffConfig config) : config_(config) {}

  // The next delay; grows geometrically up to the cap, jittered by `rng`.
  [[nodiscard]] SimTime next(Rng& rng) {
    current_ = (attempts_ == 0)
                   ? config_.base
                   : std::min<SimTime>(
                         config_.max,
                         static_cast<SimTime>(static_cast<double>(current_) *
                                              config_.multiplier));
    ++attempts_;
    const double factor =
        1.0 + config_.jitter * (2.0 * rng.uniform() - 1.0);
    const auto jittered = static_cast<SimTime>(
        static_cast<double>(current_) * std::max(0.0, factor));
    return std::max<SimTime>(1, jittered);
  }

  void reset() {
    current_ = 0;
    attempts_ = 0;
  }

  [[nodiscard]] std::uint32_t attempts() const { return attempts_; }

 private:
  BackoffConfig config_;
  SimTime current_ = 0;
  std::uint32_t attempts_ = 0;
};

}  // namespace tasklets

#include "core/job.hpp"

#include "tcl/compiler.hpp"

namespace tasklets::core {

JobOutcome::JobOutcome(std::vector<proto::TaskletReport> reports)
    : reports_(std::move(reports)) {
  for (const auto& report : reports_) {
    if (report.status != proto::TaskletStatus::kCompleted) continue;
    ++completed_;
    total_fuel_ += report.fuel_used;
    total_attempts_ += report.attempts;
    max_latency_ = std::max(max_latency_, report.latency);
  }
}

Result<std::vector<tvm::HostArg>> JobOutcome::results() const {
  std::vector<tvm::HostArg> out;
  out.reserve(reports_.size());
  for (std::size_t i = 0; i < reports_.size(); ++i) {
    const auto& report = reports_[i];
    if (report.status != proto::TaskletStatus::kCompleted) {
      return make_error(StatusCode::kAborted,
                        "tasklet " + std::to_string(i) + " " +
                            std::string(proto::to_string(report.status)) +
                            (report.error.empty() ? "" : ": " + report.error));
    }
    out.push_back(report.result);
  }
  return out;
}

double Job::progress() const {
  if (futures_.empty()) return 1.0;
  std::size_t ready = 0;
  for (const auto& future : futures_) {
    if (!future.valid() ||
        future.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      ++ready;
    }
  }
  return static_cast<double>(ready) / static_cast<double>(futures_.size());
}

JobOutcome Job::wait() {
  std::vector<proto::TaskletReport> reports;
  reports.reserve(futures_.size());
  for (auto& future : futures_) {
    reports.push_back(future.get());
  }
  return JobOutcome(std::move(reports));
}

std::optional<JobOutcome> Job::wait_for(std::chrono::milliseconds budget) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  for (const auto& future : futures_) {
    if (future.wait_until(deadline) != std::future_status::ready) {
      return std::nullopt;
    }
  }
  return wait();
}

JobBuilder& JobBuilder::kernel(std::string_view tcl_source,
                               std::string_view entry) {
  tcl::CompileOptions options;
  options.entry = entry;
  auto compiled = tcl::compile(tcl_source, options);
  if (compiled.is_ok()) {
    program_ = compiled->serialize();
  } else {
    program_ = compiled.status();
  }
  return *this;
}

JobBuilder& JobBuilder::program(Bytes serialized_program) {
  program_ = std::move(serialized_program);
  return *this;
}

Result<Job> JobBuilder::launch() {
  TASKLETS_ASSIGN_OR_RETURN(auto program, std::move(program_));
  if (invocations_.empty()) {
    return make_error(StatusCode::kFailedPrecondition,
                      "JobBuilder: no invocations added");
  }
  std::vector<proto::TaskletBody> bodies;
  bodies.reserve(invocations_.size());
  for (auto& args : invocations_) {
    proto::VmBody body;
    body.program = program;
    body.args = std::move(args);
    bodies.push_back(std::move(body));
  }
  invocations_.clear();
  return Job(system_.submit_batch(std::move(bodies), qoc_));
}

Result<std::vector<tvm::HostArg>> run_map(
    TaskletSystem& system, std::string_view tcl_source,
    std::vector<std::vector<tvm::HostArg>> args_list, proto::Qoc qoc) {
  JobBuilder builder(system);
  builder.kernel(tcl_source).qoc(qoc);
  for (auto& args : args_list) {
    builder.add(std::move(args));
  }
  TASKLETS_ASSIGN_OR_RETURN(auto job, builder.launch());
  return job.wait().results();
}

}  // namespace tasklets::core

#include "core/kernels.hpp"

namespace tasklets::core::kernels {

const std::string_view kFib = R"(
  int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  }
  int main(int n) { return fib(n); }
)";

const std::string_view kMandelbrotRow = R"(
  int escape(float cr, float ci, int max_iter) {
    float zr = 0.0;
    float zi = 0.0;
    int iter = 0;
    while (iter < max_iter && zr * zr + zi * zi <= 4.0) {
      float tmp = zr * zr - zi * zi + cr;
      zi = 2.0 * zr * zi + ci;
      zr = tmp;
      iter = iter + 1;
    }
    return iter;
  }
  int[] main(int width, int row, int height, float x0, float x1,
             float y0, float y1, int max_iter) {
    int[] out = new int[width];
    float ci = y0 + (y1 - y0) * float(row) / float(height);
    for (int col = 0; col < width; col = col + 1) {
      float cr = x0 + (x1 - x0) * float(col) / float(width);
      out[col] = escape(cr, ci, max_iter);
    }
    return out;
  }
)";

const std::string_view kMonteCarloPi = R"(
  int main(int samples, int seed) {
    // 48-bit LCG (drand48 constants) evaluated in 63-bit integer space.
    int state = seed;
    int a = 25214903917;
    int c = 11;
    int mask = 281474976710655;  // 2^48 - 1
    int hits = 0;
    for (int i = 0; i < samples; i = i + 1) {
      state = (state * a + c) & mask;
      float x = float(state) / 281474976710656.0;
      state = (state * a + c) & mask;
      float y = float(state) / 281474976710656.0;
      if (x * x + y * y <= 1.0) { hits = hits + 1; }
    }
    return hits;
  }
)";

const std::string_view kMatMul = R"(
  float[] main(float[] a, float[] b, int n) {
    float[] c = new float[n * n];
    for (int i = 0; i < n; i = i + 1) {
      for (int j = 0; j < n; j = j + 1) {
        float sum = 0.0;
        for (int k = 0; k < n; k = k + 1) {
          sum = sum + a[i * n + k] * b[k * n + j];
        }
        c[i * n + j] = sum;
      }
    }
    return c;
  }
)";

const std::string_view kSieve = R"(
  int main(int n) {
    if (n < 3) { return 0; }
    int[] composite = new int[n];
    int count = 0;
    for (int i = 2; i < n; i = i + 1) {
      if (composite[i] == 0) {
        count = count + 1;
        for (int j = i + i; j < n; j = j + i) {
          composite[j] = 1;
        }
      }
    }
    return count;
  }
)";

const std::string_view kDot = R"(
  float main(float[] a, float[] b) {
    float sum = 0.0;
    for (int i = 0; i < len(a); i = i + 1) {
      sum = sum + a[i] * b[i];
    }
    return sum;
  }
)";

const std::string_view kSpin = R"(
  int main(int iterations) {
    int acc = 1;
    for (int i = 0; i < iterations; i = i + 1) {
      acc = (acc * 6364136223846793005 + 1442695040888963407) % 1000000007;
      if (acc < 0) { acc = -acc; }
    }
    return acc;
  }
)";

const std::string_view kNBody = R"(
  float[] main(float[] px, float[] py, float[] vx, float[] vy, float[] m,
               float dt, int steps) {
    int n = len(px);
    for (int s = 0; s < steps; s = s + 1) {
      for (int i = 0; i < n; i = i + 1) {
        float ax = 0.0;
        float ay = 0.0;
        for (int j = 0; j < n; j = j + 1) {
          if (j != i) {
            float dx = px[j] - px[i];
            float dy = py[j] - py[i];
            float dist2 = dx * dx + dy * dy + 0.01;
            float inv = 1.0 / (dist2 * sqrt(dist2));
            ax = ax + m[j] * dx * inv;
            ay = ay + m[j] * dy * inv;
          }
        }
        vx[i] = vx[i] + ax * dt;
        vy[i] = vy[i] + ay * dt;
      }
      for (int i = 0; i < n; i = i + 1) {
        px[i] = px[i] + vx[i] * dt;
        py[i] = py[i] + vy[i] * dt;
      }
    }
    return px;
  }
)";

const std::string_view kQuicksort = R"(
  int[] main(int[] xs) {
    int n = len(xs);
    if (n < 2) { return xs; }
    // Explicit stack of [lo, hi] ranges (quicksort without recursion —
    // keeps the operand stack shallow regardless of input size).
    int[] stack = new int[2 * n + 4];
    int top = 0;
    stack[0] = 0;
    stack[1] = n - 1;
    top = 2;
    while (top > 0) {
      top -= 2;
      int lo = stack[top];
      int hi = stack[top + 1];
      if (lo >= hi) { continue; }
      // Median-of-three pivot to dodge the sorted-input worst case.
      int mid = lo + (hi - lo) / 2;
      int a = xs[lo];
      int b = xs[mid];
      int c = xs[hi];
      int pivot = a;
      if ((a <= b && b <= c) || (c <= b && b <= a)) { pivot = b; }
      if ((a <= c && c <= b) || (b <= c && c <= a)) { pivot = c; }
      int i = lo;
      int j = hi;
      while (i <= j) {
        while (xs[i] < pivot) { i += 1; }
        while (xs[j] > pivot) { j -= 1; }
        if (i <= j) {
          int tmp = xs[i];
          xs[i] = xs[j];
          xs[j] = tmp;
          i += 1;
          j -= 1;
        }
      }
      if (lo < j) {
        stack[top] = lo;
        stack[top + 1] = j;
        top += 2;
      }
      if (i < hi) {
        stack[top] = i;
        stack[top + 1] = hi;
        top += 2;
      }
    }
    return xs;
  }
)";

}  // namespace tasklets::core::kernels

// OpsPlane: the live observability plane shared by both runtimes.
//
// Glues the layers the ops stack is built from into one object a runtime
// owns:
//
//   * a MetricsHistory fed from periodic registry snapshots (background
//     sampler thread in the threaded runtime; the simulator calls sample()
//     from a recurring virtual-time event instead),
//   * a HealthRuleEngine evaluated on the same cadence over that history,
//   * optionally, an AdminServer (net/admin.hpp) answering the line-protocol
//     introspection commands: status, metrics, series, providers, alerts,
//     trace, top.
//
// The plane reads broker state through a callback so it never touches actor
// internals from the wrong thread — TaskletSystem marshals the read through
// the broker's ActorHost, the simulator reads directly (single-threaded).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.hpp"
#include "broker/pool_stats.hpp"
#include "common/clock.hpp"
#include "common/health_rules.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "core/flight_recorder.hpp"
#include "net/admin.hpp"

namespace tasklets::core {

struct OpsConfig {
  // Master switch: disabled (the default), the runtime constructs no
  // OpsPlane at all and the ops stack costs nothing.
  bool enabled = false;
  // Serve the admin endpoint (real runtime only; the simulator forces this
  // off — a socket thread cannot answer consistently while virtual time is
  // single-stepped).
  bool serve_admin = true;
  // Admin listener port; 0 binds an ephemeral port (see admin_port()).
  std::uint16_t admin_port = 0;
  // Sampling cadence for the time-series layer and rule evaluation.
  SimTime sample_interval = 250 * kMillisecond;
  // Ring capacity per series (512 points at 250ms ≈ the last two minutes).
  std::size_t series_capacity = 512;
  // Health/SLO rules in the health_rules.hpp syntax. Invalid rules are
  // logged and skipped, never fatal.
  std::vector<std::string> rules;
  // Tee the process logger into a ring the admin `logs` command (and
  // flight-recorder bundles) serve. The previous sink keeps receiving every
  // record; the plane restores it on stop().
  bool capture_logs = true;
  std::size_t log_buffer = 512;
  // Alert-triggered postmortem capture (core/flight_recorder.hpp). When
  // enabled, a health rule newly firing dumps a bundle, and the admin `dump`
  // command does so on demand.
  FlightRecorderConfig flight{};
};

// Parses `texts` into rules, logging and skipping invalid entries.
[[nodiscard]] std::vector<health::HealthRule> parse_rules_lenient(
    const std::vector<std::string>& texts);

class OpsPlane {
 public:
  // Broker-side state one admin request needs, captured atomically with
  // respect to the broker actor by whoever provides the callback.
  struct BrokerState {
    broker::BrokerStats stats;
    std::vector<broker::ProviderView> providers;  // online, id-sorted
    broker::PoolStats pool;
    std::size_t queue_length = 0;
    // Live memo-table entries attributed to the provider whose verified
    // result populated them (feeds the MEMO column of `top`).
    std::map<NodeId, std::uint64_t> memo_by_provider;
  };
  using BrokerStateFn = std::function<BrokerState()>;

  // `start_sampler` spawns the background sampler thread (threaded runtime);
  // the simulator passes false and drives sample() itself. `trace` may be
  // null (alerts then skip their trace instants; `trace` command errors).
  OpsPlane(OpsConfig config, BrokerStateFn broker_state, TraceStore* trace,
           bool start_sampler);
  ~OpsPlane();

  OpsPlane(const OpsPlane&) = delete;
  OpsPlane& operator=(const OpsPlane&) = delete;

  // One observation: snapshot the registry into the history, then evaluate
  // the rules. The sampler thread calls this on its cadence; the simulator
  // calls it per tick with virtual `now`.
  void sample(SimTime now);

  // Answers one admin request with one JSON line (no newline). Public so
  // tests and the simulator can query without a socket.
  [[nodiscard]] std::string handle(const net::AdminRequest& request);

  [[nodiscard]] const metrics::MetricsHistory& history() const noexcept {
    return history_;
  }
  [[nodiscard]] health::HealthRuleEngine& rule_engine() noexcept {
    return engine_;
  }
  // The flight recorder, or nullptr unless OpsConfig::flight.enabled.
  [[nodiscard]] FlightRecorder* flight_recorder() noexcept {
    return recorder_.get();
  }
  // The captured-log ring, or nullptr unless OpsConfig::capture_logs.
  [[nodiscard]] RingBufferSink* log_ring() noexcept { return log_ring_.get(); }
  [[nodiscard]] bool admin_listening() const noexcept {
    return admin_ != nullptr && admin_->listening();
  }
  // Ephemeral-port resolution for "port 0" configs; 0 when not serving.
  [[nodiscard]] std::uint16_t admin_port() const noexcept {
    return admin_ != nullptr ? admin_->port() : 0;
  }

  // Stops the sampler thread and the admin listener. Idempotent; the
  // destructor calls it. The owning runtime stops the plane *before* the
  // actors so no admin request races teardown.
  void stop();

 private:
  // Post-snapshot half of one observation: anchor timestamps, run the rules.
  // The sampler thread lands here after it has already filled history_.
  void evaluate(SimTime now);

  [[nodiscard]] std::string handle_status();
  [[nodiscard]] std::string handle_metrics(const net::AdminRequest& request);
  [[nodiscard]] std::string handle_series(const net::AdminRequest& request);
  [[nodiscard]] std::string handle_providers();
  [[nodiscard]] std::string handle_alerts();
  [[nodiscard]] std::string handle_trace(const net::AdminRequest& request);
  [[nodiscard]] std::string handle_top();
  [[nodiscard]] std::string handle_profile(const net::AdminRequest& request);
  [[nodiscard]] std::string handle_logs(const net::AdminRequest& request);
  [[nodiscard]] std::string handle_dump();

  // Spans of one tasklet: the store when it still has them, else the flight
  // recorder's recent ring (the store may have been drained by a streaming
  // exporter).
  [[nodiscard]] std::vector<Span> spans_for_analysis(TaskletId id) const;

  // "now" for windowed queries: the last sample time — correct under both
  // clocks, since all series points carry the same timebase.
  [[nodiscard]] SimTime now_anchor() const noexcept {
    return last_sample_at_.load(std::memory_order_relaxed);
  }
  // Window start from a request's `window=` duration param (kWholeSeries
  // when absent or unparseable).
  [[nodiscard]] SimTime window_since(const net::AdminRequest& request) const;

  OpsConfig config_;
  BrokerStateFn broker_state_;
  TraceStore* trace_;
  metrics::MetricsHistory history_;
  health::HealthRuleEngine engine_;
  std::atomic<SimTime> last_sample_at_{0};
  std::atomic<SimTime> first_sample_at_{-1};
  std::unique_ptr<metrics::MetricsSampler> sampler_;
  std::unique_ptr<net::AdminServer> admin_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::shared_ptr<RingBufferSink> log_ring_;
  std::shared_ptr<LogSink> previous_sink_;
  bool sink_installed_ = false;
};

}  // namespace tasklets::core

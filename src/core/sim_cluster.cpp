#include "core/sim_cluster.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace tasklets::core {


// Per-provider execution service: computes the real result (and fuel) via
// the shared VmExecutor, converts fuel to virtual service time through the
// device profile (charging only *remaining* fuel for migrated work), applies
// fault injection, drops completions when the provider crashes mid-execution
// (epoch check), and checkpoints in-flight work on graceful drain.
class SimCluster::SimExecution final : public provider::ExecutionService {
 public:
  SimExecution(SimCluster& cluster, NodeId provider_id,
               sim::DeviceProfile profile, Rng rng)
      : cluster_(cluster),
        provider_id_(provider_id),
        profile_(std::move(profile)),
        rng_(rng) {}

  // Synthetic bodies checkpoint as a tiny "SSNP" record: total fuel +
  // fuel already done.
  static Bytes encode_synthetic_snapshot(std::uint64_t total, std::uint64_t done) {
    ByteWriter w;
    w.write_u32(0x5353'4E50);  // "SSNP"
    w.write_varint(total);
    w.write_varint(done);
    return std::move(w).take();
  }
  static Result<std::pair<std::uint64_t, std::uint64_t>> decode_synthetic_snapshot(
      const Bytes& state) {
    ByteReader r(std::span<const std::byte>(state.data(), state.size()));
    TASKLETS_ASSIGN_OR_RETURN(auto magic, r.read_u32());
    if (magic != 0x5353'4E50) {
      return make_error(StatusCode::kDataLoss, "bad synthetic snapshot");
    }
    TASKLETS_ASSIGN_OR_RETURN(auto total, r.read_varint());
    TASKLETS_ASSIGN_OR_RETURN(auto done, r.read_varint());
    return std::pair{total, done};
  }

  void execute(provider::ExecRequest request, provider::ExecDone done) override {
    // Fuel the incoming work has already consumed elsewhere (migration).
    std::uint64_t prior_fuel = 0;
    proto::AttemptOutcome outcome;
    if (const auto* synth = std::get_if<proto::SyntheticBody>(&request.body);
        synth != nullptr && !request.resume_snapshot.empty()) {
      const auto decoded = decode_synthetic_snapshot(request.resume_snapshot);
      prior_fuel = decoded.is_ok() ? decoded->second : 0;
      outcome.status = proto::AttemptStatus::kOk;
      outcome.result = synth->result;
      outcome.fuel_used = synth->fuel;
    } else {
      outcome = cluster_.executor_->run(request);
      if (!request.resume_snapshot.empty()) {
        const auto fuel = tvm::snapshot_fuel(std::span<const std::byte>(
            request.resume_snapshot.data(), request.resume_snapshot.size()));
        if (fuel.is_ok()) prior_fuel = *fuel;
      }
    }
    outcome = provider::maybe_corrupt(std::move(outcome), profile_.fault_rate,
                                      rng_);
    const std::uint64_t remaining_fuel =
        outcome.fuel_used > prior_fuel ? outcome.fuel_used - prior_fuel : 0;
    const SimTime duration = outcome.status == proto::AttemptStatus::kRejected
                                 ? profile_.startup_latency
                                 : profile_.service_time(remaining_fuel);

    const std::uint64_t key = request.attempt.value();
    Pending pending;
    pending.request = std::move(request);
    pending.done = std::move(done);
    pending.outcome = std::move(outcome);
    pending.started = cluster_.engine_->now();
    pending.duration = duration;
    pending.prior_fuel = prior_fuel;
    pending_.emplace(key, std::move(pending));

    const std::uint64_t epoch = epoch_;
    cluster_.engine_->schedule(duration, [this, key, epoch] {
      if (epoch != epoch_) return;  // provider crashed mid-execution
      const auto it = pending_.find(key);
      if (it == pending_.end()) return;  // drained meanwhile
      Pending finished = std::move(it->second);
      pending_.erase(it);
      proto::Outbox out(provider_id_);
      record_vm_span(finished, finished.outcome, cluster_.engine_->now());
      finished.done(std::move(finished.outcome), cluster_.engine_->now(), out);
      cluster_.process_outbox(out);
    });
  }

  // Crash semantics: everything in flight is lost.
  void bump_epoch() noexcept {
    ++epoch_;
    pending_.clear();
  }

  // Graceful drain: checkpoint every in-flight execution *now* and deliver
  // kSuspended outcomes (or the final result, if the work would have
  // finished by now anyway).
  void drain_inflight() {
    ++epoch_;  // cancel scheduled completion events
    auto pending = std::move(pending_);
    pending_.clear();
    const SimTime now = cluster_.engine_->now();
    for (auto& [key, entry] : pending) {
      proto::AttemptOutcome outcome = suspend_outcome(entry, now);
      proto::Outbox out(provider_id_);
      record_vm_span(entry, outcome, now);
      entry.done(std::move(outcome), now, out);
      cluster_.process_outbox(out);
    }
  }

  [[nodiscard]] const sim::DeviceProfile& profile() const noexcept {
    return profile_;
  }

 private:
  struct Pending {
    provider::ExecRequest request;
    provider::ExecDone done;
    proto::AttemptOutcome outcome;  // outcome if run to completion
    SimTime started = 0;
    SimTime duration = 0;
    std::uint64_t prior_fuel = 0;
  };

  // The virtual-time "vm" span: the modelled service window (startup +
  // fuel/speed), ending when the completion (or drain checkpoint) fires.
  void record_vm_span(const Pending& entry, const proto::AttemptOutcome& outcome,
                      SimTime now) {
    TraceStore* store = cluster_.config_.trace;
    if (store == nullptr || !entry.request.trace.active()) return;
    Span span;
    span.trace_id = entry.request.trace.trace_id;
    span.parent_span = entry.request.trace.parent_span;
    span.name = "vm";
    span.node = provider_id_;
    span.tasklet = entry.request.tasklet;
    span.start = entry.started;
    span.end = now;
    span.args.emplace_back("status",
                           std::string(proto::to_string(outcome.status)));
    span.args.emplace_back("instructions", std::to_string(outcome.instructions));
    span.args.emplace_back("fuel", std::to_string(outcome.fuel_used));
    store->add(std::move(span));
  }

  // Builds the outcome a drain delivers for one in-flight execution.
  proto::AttemptOutcome suspend_outcome(Pending& entry, SimTime now) {
    if (now - entry.started >= entry.duration) {
      return std::move(entry.outcome);  // effectively finished: deliver it
    }
    // Work completed so far on this device (past the startup phase).
    const SimTime compute_time =
        std::max<SimTime>(0, now - entry.started - profile_.startup_latency);
    const auto fuel_done_here = static_cast<std::uint64_t>(
        to_seconds(compute_time) * profile_.speed_fuel_per_sec);
    const std::uint64_t absolute_fuel = entry.prior_fuel + fuel_done_here;

    proto::AttemptOutcome suspended;
    suspended.status = proto::AttemptStatus::kSuspended;
    if (const auto* synth =
            std::get_if<proto::SyntheticBody>(&entry.request.body)) {
      suspended.fuel_used = std::min(absolute_fuel, synth->fuel);
      suspended.snapshot =
          encode_synthetic_snapshot(synth->fuel, suspended.fuel_used);
      return suspended;
    }
    // VM body: regenerate the machine state at the absolute fuel point by
    // (deterministically) re-slicing; rare event, so the recompute is fine.
    const auto& vm_body = std::get<proto::VmBody>(entry.request.body);
    auto program = tvm::Program::deserialize(std::span<const std::byte>(
        vm_body.program.data(), vm_body.program.size()));
    if (!program.is_ok()) return std::move(entry.outcome);
    Result<tvm::SliceOutcome> slice = [&]() -> Result<tvm::SliceOutcome> {
      if (!entry.request.resume_snapshot.empty()) {
        tvm::Suspension incoming;
        incoming.state = entry.request.resume_snapshot;
        return tvm::resume_slice(*program, incoming, {}, fuel_done_here);
      }
      return tvm::execute_slice(*program, vm_body.args, {}, absolute_fuel);
    }();
    if (!slice.is_ok() || std::holds_alternative<tvm::ExecOutcome>(*slice)) {
      // Completed (or trapped) within the window: deliver the final outcome.
      return std::move(entry.outcome);
    }
    auto& suspension = std::get<tvm::Suspension>(*slice);
    suspended.fuel_used = suspension.fuel_used;
    suspended.snapshot = std::move(suspension.state);
    return suspended;
  }

  SimCluster& cluster_;
  NodeId provider_id_;
  sim::DeviceProfile profile_;
  Rng rng_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
};

struct SimCluster::Node {
  std::unique_ptr<proto::Actor> actor;
  SimTime link_latency = 0;
  double bandwidth_bps = 1e9;
  // Provider-only:
  std::unique_ptr<SimExecution> execution;
  provider::ProviderAgent* provider = nullptr;
  consumer::ConsumerAgent* consumer = nullptr;
  Rng churn_rng;
  double cost_per_gfuel = 0.0;
};

SimCluster::SimCluster(SimConfig config)
    : config_(std::move(config)),
      engine_(std::make_unique<sim::Engine>()),
      rng_(config_.seed),
      executor_(std::make_shared<provider::VmExecutor>(config_.exec_limits)) {
  config_.broker.trace = config_.trace;
  std::unique_ptr<broker::Scheduler> scheduler;
  if (config_.scheduler_factory) {
    scheduler = config_.scheduler_factory();
  } else {
    auto by_name = broker::make_scheduler(config_.scheduler);
    if (by_name.is_ok()) {
      scheduler = std::move(by_name).value();
    } else {
      TASKLETS_LOG(kError, "sim") << by_name.status().to_string()
                                  << "; using qoc_aware";
      scheduler = broker::make_qoc_aware();
    }
  }
  broker_id_ = node_ids_.next();
  auto broker_actor = std::make_unique<broker::Broker>(
      broker_id_, std::move(scheduler), config_.broker);
  broker_ = broker_actor.get();
  auto node = std::make_unique<Node>();
  node->actor = std::move(broker_actor);
  node->link_latency = config_.broker_link_latency;
  node->bandwidth_bps = config_.broker_bandwidth_bps;
  nodes_.emplace(broker_id_, std::move(node));
  // Broker startup at t=0.
  engine_->schedule(0, [this] {
    proto::Outbox out(broker_id_);
    broker_->on_start(engine_->now(), out);
    process_outbox(out);
  });

  if (config_.ops.enabled) {
    OpsConfig ops_config = config_.ops;
    ops_config.serve_admin = false;  // see SimConfig::ops
    // Single-threaded virtual time: broker state is read directly.
    ops_ = std::make_unique<OpsPlane>(
        std::move(ops_config),
        [this]() {
          OpsPlane::BrokerState state;
          state.stats = broker_->stats();
          state.providers = broker_->provider_views();
          state.pool = broker::compute_pool_stats(state.providers);
          state.queue_length = broker_->queue_length();
          broker_->memo_table().for_each(
              [&state](const store::MemoKey&, const store::MemoEntry& entry) {
                ++state.memo_by_provider[entry.provider];
              });
          return state;
        },
        config_.trace, /*start_sampler=*/false);
    schedule_ops_sample();
  }
}

SimCluster::~SimCluster() = default;

void SimCluster::schedule_ops_sample() {
  // Perpetual by design: run_until_quiescent terminates on the report count,
  // not engine emptiness, and run_for stops at its deadline either way.
  engine_->schedule(config_.ops.sample_interval, [this] {
    ops_->sample(engine_->now());
    schedule_ops_sample();
  });
}

SimCluster::Node& SimCluster::node(NodeId id) { return *nodes_.at(id); }

SimTime SimCluster::now() const { return engine_->now(); }

NodeId SimCluster::add_provider(const sim::DeviceProfile& profile) {
  const NodeId id = node_ids_.next();
  auto node = std::make_unique<Node>();
  node->link_latency = profile.link_latency;
  node->bandwidth_bps = profile.bandwidth_bps;
  node->cost_per_gfuel = profile.cost_per_gfuel;
  node->execution = std::make_unique<SimExecution>(*this, id, profile, rng_.fork());
  node->churn_rng = rng_.fork();
  // Providers must heartbeat at the cadence the broker's liveness timeout
  // assumes.
  provider::ProviderConfig provider_config;
  provider_config.heartbeat_interval = config_.broker.heartbeat_interval;
  provider_config.trace = config_.trace;
  auto agent = std::make_unique<provider::ProviderAgent>(
      id, broker_id_, profile.capability(), *node->execution, provider_config);
  node->provider = agent.get();
  node->actor = std::move(agent);
  Node* raw = node.get();
  nodes_.emplace(id, std::move(node));
  engine_->schedule(0, [this, raw, id] {
    proto::Outbox out(id);
    raw->actor->on_start(engine_->now(), out);
    process_outbox(out);
  });
  // Trace-driven churn (explicit offline windows) takes precedence over the
  // exponential session model when the profile carries a trace.
  if (!profile.churn_trace.empty()) {
    schedule_churn_trace(id);
  } else if (profile.mean_session > 0) {
    schedule_churn(id);
  }
  return id;
}

void SimCluster::take_offline(NodeId provider_id) {
  Node& n = node(provider_id);
  if (n.execution->profile().graceful_leave) {
    // Announce the drain *before* emitting checkpoints: the (small)
    // deregister frame would otherwise overtake the (larger) suspended
    // results on the wire and the broker would re-issue from scratch.
    // With draining=true it waits for the checkpoints instead.
    proto::Outbox out(provider_id);
    n.provider->leave(out);
    process_outbox(out);
    n.execution->drain_inflight();
  } else {
    n.provider->crash();
    n.execution->bump_epoch();  // in-flight completions are lost
  }
}

void SimCluster::bring_online(NodeId provider_id) {
  Node& n = node(provider_id);
  proto::Outbox out(provider_id);
  n.provider->rejoin(engine_->now(), out);
  process_outbox(out);
}

void SimCluster::schedule_churn_trace(NodeId provider_id) {
  // Trace times are absolute virtual times; providers are normally added at
  // t=0, but clamp anyway so late-added providers replay their remaining
  // windows instead of scheduling into the past.
  const SimTime now = engine_->now();
  for (const auto& [down_at, up_at] :
       node(provider_id).execution->profile().churn_trace) {
    if (down_at >= now) {
      engine_->schedule(down_at - now,
                        [this, provider_id] { take_offline(provider_id); });
    }
    // up_at <= down_at encodes a permanent departure.
    if (up_at > down_at && up_at >= now) {
      engine_->schedule(up_at - now,
                        [this, provider_id] { bring_online(provider_id); });
    }
  }
}

std::vector<NodeId> SimCluster::add_providers(const sim::DeviceProfile& profile,
                                              std::size_t count) {
  std::vector<NodeId> ids;
  ids.reserve(count);
  for (std::size_t i = 0; i < count; ++i) ids.push_back(add_provider(profile));
  return ids;
}

void SimCluster::schedule_churn(NodeId provider_id) {
  Node& n = node(provider_id);
  const auto& profile = n.execution->profile();
  const SimTime session =
      static_cast<SimTime>(n.churn_rng.exponential(
          static_cast<double>(profile.mean_session)));
  engine_->schedule(session, [this, provider_id] {
    Node& n = node(provider_id);
    take_offline(provider_id);
    const SimTime downtime = static_cast<SimTime>(n.churn_rng.exponential(
        static_cast<double>(n.execution->profile().mean_downtime)));
    engine_->schedule(downtime, [this, provider_id] {
      bring_online(provider_id);
      schedule_churn(provider_id);
    });
  });
}

NodeId SimCluster::add_consumer(std::string locality) {
  const NodeId id = node_ids_.next();
  auto node = std::make_unique<Node>();
  node->link_latency = config_.consumer_link_latency;
  node->bandwidth_bps = config_.consumer_bandwidth_bps;
  consumer::ConsumerConfig consumer_config = config_.consumer;
  consumer_config.trace = config_.trace;
  auto agent = std::make_unique<consumer::ConsumerAgent>(
      id, broker_id_, std::move(locality), consumer_config);
  node->consumer = agent.get();
  node->actor = std::move(agent);
  Node* raw = node.get();
  nodes_.emplace(id, std::move(node));
  engine_->schedule(0, [this, raw, id] {
    proto::Outbox out(id);
    raw->actor->on_start(engine_->now(), out);
    process_outbox(out);
  });
  return id;
}

NodeId SimCluster::default_consumer() {
  if (!default_consumer_id_.valid()) {
    default_consumer_id_ = add_consumer();
  }
  return default_consumer_id_;
}

TaskletId SimCluster::submit(proto::TaskletBody body, proto::Qoc qoc,
                             NodeId consumer, JobId job) {
  return submit_at(0, std::move(body), qoc, consumer, job);
}

TaskletId SimCluster::submit_at(SimTime when, proto::TaskletBody body,
                                proto::Qoc qoc, NodeId consumer, JobId job) {
  const NodeId consumer_id = consumer.valid() ? consumer : default_consumer();
  proto::TaskletSpec spec;
  spec.id = tasklet_ids_.next();
  spec.job = job.valid() ? job : job_ids_.next();
  spec.body = std::move(body);
  spec.qoc = qoc;
  ++submitted_;
  const TaskletId id = spec.id;
  engine_->schedule(when, [this, consumer_id, spec = std::move(spec)]() mutable {
    Node& n = node(consumer_id);
    proto::Outbox out(consumer_id);
    n.consumer->submit(
        std::move(spec),
        [this](const proto::TaskletReport& report) {
          report_index_.emplace(report.id, reports_.size());
          reports_.push_back(report);
          if (report.status == proto::TaskletStatus::kCompleted &&
              report.executed_by.valid()) {
            const auto it = nodes_.find(report.executed_by);
            if (it != nodes_.end()) {
              total_cost_ += static_cast<double>(report.fuel_used) / 1e9 *
                             it->second->cost_per_gfuel;
            }
          }
        },
        engine_->now(), out);
    process_outbox(out);
  });
  return id;
}

DagId SimCluster::submit_dag(std::vector<dag::DagNode> nodes, proto::Qoc qoc,
                             NodeId consumer, JobId job,
                             std::vector<std::uint32_t> outputs) {
  return submit_dag_at(0, std::move(nodes), qoc, consumer, job,
                       std::move(outputs));
}

DagId SimCluster::submit_dag_at(SimTime when, std::vector<dag::DagNode> nodes,
                                proto::Qoc qoc, NodeId consumer, JobId job,
                                std::vector<std::uint32_t> outputs) {
  const NodeId consumer_id = consumer.valid() ? consumer : default_consumer();
  dag::DagSpec spec;
  spec.id = dag_ids_.next();
  spec.job = job.valid() ? job : job_ids_.next();
  spec.nodes = std::move(nodes);
  spec.qoc = qoc;
  spec.outputs = std::move(outputs);
  ++dags_submitted_;
  const DagId id = spec.id;
  engine_->schedule(when, [this, consumer_id, spec = std::move(spec)]() mutable {
    Node& n = node(consumer_id);
    proto::Outbox out(consumer_id);
    n.consumer->submit_dag(
        std::move(spec),
        [this](const proto::DagStatus& status) {
          dag_status_index_.emplace(status.dag, dag_statuses_.size());
          dag_statuses_.push_back(status);
        },
        /*node_handler=*/nullptr, engine_->now(), out);
    process_outbox(out);
  });
  return id;
}

void SimCluster::dispatch(proto::Envelope envelope) {
  const auto from_it = nodes_.find(envelope.from);
  const auto to_it = nodes_.find(envelope.to);
  if (to_it == nodes_.end()) return;  // peer gone
  const std::size_t size = proto::message_wire_size(envelope.payload);
  wire_bytes_ += size;
  wire_bytes_by_message_[std::string(proto::message_name(envelope.payload))] +=
      size;
  SimTime delay = to_it->second->link_latency;
  double bandwidth = to_it->second->bandwidth_bps;
  if (from_it != nodes_.end()) {
    delay += from_it->second->link_latency;
    bandwidth = std::min(bandwidth, from_it->second->bandwidth_bps);
  }
  if (bandwidth > 0) {
    delay += from_seconds(static_cast<double>(size) * 8.0 / bandwidth);
  }
  proto::Actor* target = to_it->second->actor.get();
  engine_->schedule(delay, [this, target, envelope = std::move(envelope)] {
    // Re-check liveness at delivery time: the node may have been removed.
    proto::Outbox out(target->id());
    target->on_message(envelope, engine_->now(), out);
    process_outbox(out);
  });
}

void SimCluster::process_outbox(proto::Outbox& out) {
  for (auto& request : out.take_timers()) {
    arm_timer(out.self(), request);
  }
  for (auto& envelope : out.take_messages()) {
    dispatch(std::move(envelope));
  }
}

void SimCluster::arm_timer(NodeId node_id, const proto::TimerRequest& request) {
  // Key = node id hashed with timer id; generations give replace semantics.
  const std::uint64_t key = node_id.value() * 0x9E3779B97F4A7C15ULL ^ request.timer_id;
  const std::uint64_t generation = ++timer_generations_[key];
  engine_->schedule(request.delay, [this, node_id, key, generation,
                                    timer_id = request.timer_id] {
    if (timer_generations_[key] != generation) return;  // re-armed since
    const auto it = nodes_.find(node_id);
    if (it == nodes_.end()) return;
    proto::Outbox out(node_id);
    it->second->actor->on_timer(timer_id, engine_->now(), out);
    process_outbox(out);
  });
}

bool SimCluster::run_until_quiescent(SimTime max_virtual_time) {
  while ((reports_.size() < submitted_ ||
          dag_statuses_.size() < dags_submitted_) &&
         !engine_->empty() && engine_->now() <= max_virtual_time) {
    engine_->run(1);
  }
  return reports_.size() >= submitted_ &&
         dag_statuses_.size() >= dags_submitted_;
}

void SimCluster::run_for(SimTime duration) {
  engine_->run_until(engine_->now() + duration);
}

const proto::TaskletReport* SimCluster::report_for(TaskletId id) const {
  const auto it = report_index_.find(id);
  return it == report_index_.end() ? nullptr : &reports_[it->second];
}

const proto::DagStatus* SimCluster::dag_status_for(DagId id) const {
  const auto it = dag_status_index_.find(id);
  return it == dag_status_index_.end() ? nullptr : &dag_statuses_[it->second];
}

std::size_t SimCluster::completed_ok() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(reports_.begin(), reports_.end(),
                    [](const proto::TaskletReport& r) {
                      return r.status == proto::TaskletStatus::kCompleted;
                    }));
}

}  // namespace tasklets::core

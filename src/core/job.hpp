// Job-level consumer API.
//
// A Job is a batch of tasklets sharing one kernel and one QoC, submitted
// together and harvested together — the shape almost every Tasklet
// application has (map a kernel over a parameter list, gather the results).
// JobBuilder compiles the kernel once and ships it with per-tasklet
// arguments; Job tracks progress and aggregates the reports.
//
//   auto job = core::JobBuilder(system)
//                  .kernel(core::kernels::kMonteCarloPi)
//                  .qoc(reliable)
//                  .add({samples, seed1})
//                  .add({samples, seed2})
//                  .launch();
//   core::JobOutcome outcome = job->wait();
//   // outcome.results()[i] corresponds to add() call i.
#pragma once

#include <chrono>
#include <optional>

#include "core/system.hpp"

namespace tasklets::core {

// Aggregated view of a finished (or partially finished) job.
class JobOutcome {
 public:
  explicit JobOutcome(std::vector<proto::TaskletReport> reports);

  [[nodiscard]] std::size_t size() const noexcept { return reports_.size(); }
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }
  [[nodiscard]] std::size_t failed() const noexcept {
    return reports_.size() - completed_;
  }
  [[nodiscard]] bool all_completed() const noexcept {
    return completed_ == reports_.size();
  }

  // Reports in submission order.
  [[nodiscard]] const std::vector<proto::TaskletReport>& reports() const noexcept {
    return reports_;
  }

  // Result values in submission order; error if any tasklet failed (the
  // message names the first failure).
  [[nodiscard]] Result<std::vector<tvm::HostArg>> results() const;

  // Sums over completed tasklets.
  [[nodiscard]] std::uint64_t total_fuel() const noexcept { return total_fuel_; }
  [[nodiscard]] std::uint32_t total_attempts() const noexcept {
    return total_attempts_;
  }
  [[nodiscard]] SimTime max_latency() const noexcept { return max_latency_; }

 private:
  std::vector<proto::TaskletReport> reports_;
  std::size_t completed_ = 0;
  std::uint64_t total_fuel_ = 0;
  std::uint32_t total_attempts_ = 0;
  SimTime max_latency_ = 0;
};

// A launched batch. Move-only; harvesting (wait) consumes the futures.
class Job {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return futures_.size(); }

  // Fraction of tasklets with a terminal report, in [0,1]. Non-blocking.
  [[nodiscard]] double progress() const;

  // True when every tasklet is terminal. Non-blocking.
  [[nodiscard]] bool done() const { return progress() >= 1.0; }

  // Blocks until all tasklets are terminal and aggregates. Call once.
  [[nodiscard]] JobOutcome wait();

  // Waits up to `budget`; returns the outcome if everything finished.
  [[nodiscard]] std::optional<JobOutcome> wait_for(std::chrono::milliseconds budget);

 private:
  friend class JobBuilder;
  explicit Job(std::vector<std::future<proto::TaskletReport>> futures)
      : futures_(std::move(futures)) {}

  std::vector<std::future<proto::TaskletReport>> futures_;
};

class JobBuilder {
 public:
  explicit JobBuilder(TaskletSystem& system) : system_(system) {}

  // Sets the TCL kernel shared by every tasklet in the job. Compiled once.
  JobBuilder& kernel(std::string_view tcl_source, std::string_view entry = "main");
  // Uses an already compiled/serialized program.
  JobBuilder& program(Bytes serialized_program);
  JobBuilder& qoc(proto::Qoc qoc) {
    qoc_ = qoc;
    return *this;
  }
  // Adds one tasklet invoking the kernel with `args`.
  JobBuilder& add(std::vector<tvm::HostArg> args) {
    invocations_.push_back(std::move(args));
    return *this;
  }

  // Submits everything under a fresh job id. Fails without submitting
  // anything if the kernel failed to compile or no kernel/invocations were
  // provided.
  [[nodiscard]] Result<Job> launch();

 private:
  TaskletSystem& system_;
  Result<Bytes> program_ = make_error(StatusCode::kFailedPrecondition,
                                      "JobBuilder: no kernel set");
  proto::Qoc qoc_{};
  std::vector<std::vector<tvm::HostArg>> invocations_;
};

// Convenience: map `tcl_source` over `args_list` and return the results in
// order. Blocks until the whole job finishes.
[[nodiscard]] Result<std::vector<tvm::HostArg>> run_map(
    TaskletSystem& system, std::string_view tcl_source,
    std::vector<std::vector<tvm::HostArg>> args_list, proto::Qoc qoc = {});

}  // namespace tasklets::core

#include "core/flight_recorder.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"

namespace tasklets::core {

namespace {
constexpr std::string_view kLog = "flight";

// Filesystem-safe reason slug for the bundle filename.
std::string sanitize_reason(std::string_view reason) {
  std::string out;
  for (const char c : reason.substr(0, 40)) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    out.push_back(safe ? c : '_');
  }
  return out.empty() ? std::string("dump") : out;
}
}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {}

void FlightRecorder::record_span(const Span& span) {
  const std::scoped_lock lock(mutex_);
  ++spans_seen_;
  spans_.push_back(span);
  while (spans_.size() > config_.span_capacity) spans_.pop_front();
}

void FlightRecorder::set_log_source(std::shared_ptr<RingBufferSink> sink) {
  const std::scoped_lock lock(mutex_);
  log_source_ = std::move(sink);
}

std::vector<Span> FlightRecorder::recent_spans() const {
  const std::scoped_lock lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

std::vector<Span> FlightRecorder::recent_spans_for(TaskletId id) const {
  std::vector<Span> out;
  {
    const std::scoped_lock lock(mutex_);
    for (const Span& span : spans_) {
      if (span.tasklet == id) out.push_back(span);
    }
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start != b.start ? a.start < b.start : a.span_id < b.span_id;
  });
  return out;
}

std::uint64_t FlightRecorder::spans_seen() const {
  const std::scoped_lock lock(mutex_);
  return spans_seen_;
}

std::uint64_t FlightRecorder::dumps_written() const {
  const std::scoped_lock lock(mutex_);
  return dumps_;
}

std::string FlightRecorder::render_bundle(const DumpContext& ctx) const {
  std::vector<Span> spans;
  std::vector<std::string> logs;
  std::uint64_t seen = 0;
  {
    const std::scoped_lock lock(mutex_);
    spans.assign(spans_.begin(), spans_.end());
    seen = spans_seen_;
    if (log_source_ != nullptr) logs = log_source_->lines();
  }

  std::string out = "{\"bundle\":\"tasklets-flight\",\"version\":1,\"reason\":";
  metrics::json_append_escaped(out, ctx.reason);
  out += ",\"dumped_at\":" + std::to_string(ctx.now);
  out += ",\"spans_seen\":" + std::to_string(seen);
  out += ",\"spans_retained\":" + std::to_string(spans.size());
  out += ",\"status\":";
  out += ctx.status_json.empty() ? "null" : ctx.status_json;
  out += ",\"alerts\":";
  out += ctx.alerts_json.empty() ? "null" : ctx.alerts_json;

  out += ",\"series\":{";
  if (ctx.history != nullptr) {
    const SimTime since = ctx.now - config_.series_window;
    bool first_series = true;
    for (const std::string& name : ctx.history->names()) {
      const metrics::TimeSeries* series = ctx.history->series(name);
      if (series == nullptr) continue;
      if (!first_series) out += ",";
      first_series = false;
      metrics::json_append_escaped(out, name);
      out += ":[";
      bool first_point = true;
      for (const metrics::SeriesPoint& point : series->window(since)) {
        if (!first_point) out += ",";
        first_point = false;
        char buf[64];
        std::snprintf(buf, sizeof buf, "[%lld,%.9g]",
                      static_cast<long long>(point.at), point.value);
        out += buf;
      }
      out += "]";
    }
  }
  out += "},\"logs\":[";
  bool first_log = true;
  for (const std::string& line : logs) {
    if (!first_log) out += ",";
    first_log = false;
    metrics::json_append_escaped(out, line);
  }
  out += "],\"trace\":{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first_span = true;
  for (const Span& span : spans) {
    if (!first_span) out += ",";
    first_span = false;
    append_chrome_event(out, span);
  }
  out += "]}}";
  return out;
}

Result<std::string> FlightRecorder::dump_to_file(const DumpContext& ctx,
                                                 bool triggered) {
  std::string path;
  {
    const std::scoped_lock lock(mutex_);
    if (dumps_ >= config_.max_dumps) {
      return make_error(StatusCode::kResourceExhausted,
                        "flight-recorder dump cap reached");
    }
    if (triggered && dumped_once_ &&
        ctx.now - last_dump_at_ < config_.min_dump_interval) {
      return make_error(StatusCode::kResourceExhausted,
                        "flight-recorder dump rate-limited");
    }
    ++dumps_;
    last_dump_at_ = ctx.now;
    dumped_once_ = true;
    path = config_.dump_dir + "/flight-" + sanitize_reason(ctx.reason) + "-" +
           std::to_string(dumps_) + ".json";
  }

  const std::string bundle = render_bundle(ctx);
  // Best-effort single-level create: a missing dump dir must not turn every
  // triggered dump into a silent failure. EEXIST (the common case) is fine.
  ::mkdir(config_.dump_dir.c_str(), 0755);
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return make_error(StatusCode::kUnavailable, "cannot open " + path);
  }
  const bool ok =
      std::fwrite(bundle.data(), 1, bundle.size(), file) == bundle.size();
  std::fclose(file);
  if (!ok) return make_error(StatusCode::kDataLoss, "short write to " + path);
  TASKLETS_LOG(kInfo, kLog)
          .kv("path", path)
          .kv("reason", ctx.reason)
          .kv("bytes", bundle.size())
      << "flight-recorder bundle written";
  return path;
}

}  // namespace tasklets::core

// TaskletSystem: the threaded (real-execution) runtime facade.
//
// One process hosts a broker, any number of providers (each with its own
// execution worker pool sized to its slot count) and a consumer endpoint
// with a future-based submission API. This is the runtime the examples use
// and the deployment shape a downstream application embeds; the simulator
// (core/sim_cluster.hpp) shares every protocol component with it.
//
// Typical use:
//   core::TaskletSystem system;
//   system.add_provider();                       // self-measured capability
//   auto body = core::compile_tasklet(source, {args...});
//   auto future = system.submit(std::move(*body));
//   proto::TaskletReport report = future.get();
#pragma once

#include <future>
#include <unordered_map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "broker/broker.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "consumer/consumer.hpp"
#include "core/ops.hpp"
#include "net/fault.hpp"
#include "net/inproc.hpp"
#include "proto/types.hpp"
#include "provider/provider.hpp"
#include "tvm/marshal.hpp"

namespace tasklets::core {

// Compiles TCL source and packages it with arguments as a tasklet body.
[[nodiscard]] Result<proto::VmBody> compile_tasklet(
    std::string_view tcl_source, std::vector<tvm::HostArg> args,
    std::string_view entry = "main");

struct ProviderOptions {
  // Device identity advertised to the broker. If speed_fuel_per_sec is 0 it
  // is self-measured with the calibration benchmark.
  proto::Capability capability{};
  // Emulated slowdown for heterogeneity experiments on one physical host:
  // 2.0 makes the provider behave half as fast (sleeps after executing).
  double slowdown = 1.0;
  // Silent result-corruption probability (tests redundancy voting).
  double fault_rate = 0.0;
  std::uint64_t fault_seed = 0x5EED;
};

enum class Transport : std::uint8_t {
  kInProc = 0,  // direct mailbox delivery (default)
  kTcp,         // length-prefixed frames over loopback TCP sockets
};

struct SystemConfig {
  std::string scheduler = "qoc_aware";
  Transport transport = Transport::kInProc;
  broker::BrokerConfig broker{};
  tvm::ExecLimits exec_limits{};
  std::string consumer_locality;  // origin tag for QoC locality matching
  consumer::ConsumerConfig consumer{};
  // When set, the transport is wrapped in a net::FaultyRuntime applying
  // this plan to every message (chaos testing). See faults().
  std::optional<net::FaultPlan> fault_plan;
  // Distributed tracing: when true the system owns a TraceStore and every
  // actor (broker, consumer, providers, VM executions) records spans into
  // it. Query via trace_store(); export with TraceStore::export_chrome_json.
  bool tracing = false;
  // Live ops plane (core/ops.hpp): metrics time series + health rules +
  // admin endpoint. Off by default.
  OpsConfig ops{};
};

class TaskletSystem {
 public:
  explicit TaskletSystem(SystemConfig config = {});
  ~TaskletSystem();

  TaskletSystem(const TaskletSystem&) = delete;
  TaskletSystem& operator=(const TaskletSystem&) = delete;

  // Adds a provider node; returns its id. Thread-safe.
  NodeId add_provider(ProviderOptions options = {});

  // Gracefully drains a provider: it deregisters from the broker and its
  // in-flight executions checkpoint at the next fuel-slice boundary and are
  // reported as suspended — the broker migrates them to other providers,
  // which resume from the snapshots. No work is lost or restarted.
  void drain_provider(NodeId id);

  // Submits a tasklet body; the future resolves with the terminal report.
  [[nodiscard]] std::future<proto::TaskletReport> submit(proto::TaskletBody body,
                                                         proto::Qoc qoc = {},
                                                         JobId job = {});

  // Submits a whole batch under one job id; futures in submission order.
  [[nodiscard]] std::vector<std::future<proto::TaskletReport>> submit_batch(
      std::vector<proto::TaskletBody> bodies, proto::Qoc qoc = {});

  // Submits a dataflow graph (protocol r4): nodes reference each other by
  // index through `inputs` edges, finished results are bound into dependents
  // broker-side. The future resolves with the terminal DagStatus (outputs =
  // the reports of `outputs` nodes, or every sink when empty).
  [[nodiscard]] std::future<proto::DagStatus> submit_dag(
      std::vector<dag::DagNode> nodes, proto::Qoc qoc = {},
      std::vector<std::uint32_t> outputs = {});

  // Snapshot of broker statistics (synchronizes with the broker actor).
  [[nodiscard]] broker::BrokerStats broker_stats();

  // Snapshot of the process-wide metrics registry (see common/metrics.hpp).
  // The registry is process-global, so counters aggregate across systems if
  // several coexist; MetricsRegistry::instance().reset() isolates runs.
  [[nodiscard]] static metrics::MetricsSnapshot metrics_snapshot();

  // The system's span collector, or nullptr unless SystemConfig::tracing.
  [[nodiscard]] TraceStore* trace_store() noexcept { return trace_.get(); }

  // The live ops plane, or nullptr unless SystemConfig::ops.enabled. Use
  // ops()->admin_port() to reach the introspection endpoint when the config
  // asked for an ephemeral port.
  [[nodiscard]] OpsPlane* ops() noexcept { return ops_.get(); }

  // Number of providers added so far.
  [[nodiscard]] std::size_t provider_count() const noexcept;

  // The fault-injection decorator, or nullptr when no fault plan was
  // configured. Tests use it for partitions and the decision trace.
  [[nodiscard]] net::FaultyRuntime* faults() noexcept { return faults_; }

  // Ids of the system's fixed actors (for fault plans / partitions).
  [[nodiscard]] NodeId broker_id() const noexcept { return broker_id_; }
  [[nodiscard]] NodeId consumer_id() const noexcept { return consumer_id_; }

  // Stops all actors and worker pools. Called by the destructor; after
  // stop() submissions fail their futures with broken_promise.
  void stop();

 private:
  class ProviderExecution;

  SystemConfig config_;
  // Declared before runtime_: actors hold raw pointers into the store, so it
  // must outlive them (members destroy in reverse declaration order).
  std::unique_ptr<TraceStore> trace_;
  std::unique_ptr<net::Runtime> runtime_;
  net::FaultyRuntime* faults_ = nullptr;  // == runtime_.get() when wrapping
  IdGenerator<NodeId> node_ids_;
  IdGenerator<TaskletId> tasklet_ids_;
  IdGenerator<JobId> job_ids_;
  IdGenerator<DagId> dag_ids_;
  NodeId broker_id_;
  NodeId consumer_id_;
  broker::Broker* broker_ = nullptr;      // owned by runtime_
  consumer::ConsumerAgent* consumer_ = nullptr;  // owned by runtime_
  net::ActorHost* broker_host_ = nullptr;
  net::ActorHost* consumer_host_ = nullptr;
  std::shared_ptr<provider::VmExecutor> executor_;
  mutable std::mutex providers_mutex_;
  std::vector<std::unique_ptr<ProviderExecution>> provider_executions_;
  std::unordered_map<NodeId, std::pair<ProviderExecution*, net::ActorHost*>>
      providers_by_id_;
  // Constructed last, stopped first: its admin handlers and sampler reach
  // into the broker host, so it must never outlive the runtime's actors.
  std::unique_ptr<OpsPlane> ops_;
  bool stopped_ = false;
};

}  // namespace tasklets::core

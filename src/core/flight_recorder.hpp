// FlightRecorder: always-on bounded postmortem capture.
//
// Keeps a small ring of the most recent spans (fed by a TraceStore observer,
// so it sees even spans the store's capacity cap drops), a handle on the
// admin log ring, and — at dump time — snapshots the metrics series windows
// and broker/alert state into one self-contained JSON bundle. The OpsPlane
// triggers a dump when a health rule newly fires (rate-limited), and the
// admin `dump` command triggers one on demand; `taskletc analyze` reads the
// bundle back into critical-path and wait-graph reports.
//
// Bundles are written as <dump_dir>/flight-<reason>-<seq>.json. A per-run
// dump cap bounds disk usage no matter how often rules flap.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/status.hpp"
#include "common/trace.hpp"

namespace tasklets::core {

struct FlightRecorderConfig {
  bool enabled = false;
  // Recent-span ring capacity (8k spans ≈ the last ~1k tasklet lifecycles).
  std::size_t span_capacity = 8192;
  // How much series history lands in a bundle.
  SimTime series_window = 60 * kSecond;
  // Where bundles are written ("." = current directory).
  std::string dump_dir = ".";
  // Hard cap on bundles per run, and the minimum spacing between
  // rule-triggered dumps (admin-requested dumps ignore the spacing).
  std::size_t max_dumps = 8;
  SimTime min_dump_interval = 5 * kSecond;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  // Span feed; any thread (TraceStore calls this from under its mutex).
  void record_span(const Span& span);

  // Log lines included in bundles (the admin `logs` ring). May be null.
  void set_log_source(std::shared_ptr<RingBufferSink> sink);

  [[nodiscard]] std::vector<Span> recent_spans() const;
  // One tasklet's retained spans in causal order.
  [[nodiscard]] std::vector<Span> recent_spans_for(TaskletId id) const;
  [[nodiscard]] std::uint64_t spans_seen() const;
  [[nodiscard]] std::uint64_t dumps_written() const;

  // Everything a bundle snapshots besides the recorder's own rings. The
  // pre-rendered JSON documents come from the OpsPlane's admin handlers so
  // bundle contents match what the live endpoint would have answered.
  struct DumpContext {
    std::string reason;
    SimTime now = 0;
    std::string status_json;  // admin `status` document ("" -> null)
    std::string alerts_json;  // admin `alerts` document ("" -> null)
    const metrics::MetricsHistory* history = nullptr;
  };

  // Renders the self-contained bundle document.
  [[nodiscard]] std::string render_bundle(const DumpContext& ctx) const;

  // Renders and writes one bundle; returns its path. `triggered` dumps
  // (health-rule firings) are rate-limited by min_dump_interval; both kinds
  // honour max_dumps.
  Result<std::string> dump_to_file(const DumpContext& ctx, bool triggered);

 private:
  FlightRecorderConfig config_;
  mutable std::mutex mutex_;
  std::deque<Span> spans_;
  std::uint64_t spans_seen_ = 0;
  std::shared_ptr<RingBufferSink> log_source_;
  std::uint64_t dumps_ = 0;
  SimTime last_dump_at_ = 0;
  bool dumped_once_ = false;
};

}  // namespace tasklets::core

#include "core/ops.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/log.hpp"
#include "common/trace_analysis.hpp"

namespace tasklets::core {

namespace {
constexpr std::string_view kLog = "ops";

// JSON number from a double: finite values via %.9g (round-trips the
// precision the signals carry), non-finite rendered as 0 — JSON has no nan.
void append_num(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) { out += std::to_string(v); }
void append_i64(std::string& out, std::int64_t v) { out += std::to_string(v); }

void append_pool(std::string& out, const broker::PoolStats& pool) {
  out += "{\"providers\":";
  append_u64(out, pool.providers);
  out += ",\"confident\":";
  append_u64(out, pool.confident);
  out += ",\"heterogeneity\":";
  append_num(out, pool.heterogeneity);
  out += ",\"cv\":";
  append_num(out, pool.cv);
  out += ",\"mean_speed\":";
  append_num(out, pool.mean_speed);
  out += ",\"min_speed\":";
  append_num(out, pool.min_speed);
  out += ",\"max_speed\":";
  append_num(out, pool.max_speed);
  out += ",\"mean_health\":";
  append_num(out, pool.mean_health);
  out += ",\"min_health\":";
  append_num(out, pool.min_health);
  out += "}";
}

void append_alert(std::string& out, const health::Alert& alert) {
  out += "{\"rule\":";
  metrics::json_append_escaped(out, alert.rule);
  out += ",\"series\":";
  metrics::json_append_escaped(out, alert.series);
  out += ",\"value\":";
  append_num(out, alert.value);
  out += ",\"threshold\":";
  append_num(out, alert.threshold);
  out += ",\"fired_at\":";
  append_i64(out, alert.fired_at);
  out += ",\"cleared_at\":";
  append_i64(out, alert.cleared_at);
  out += ",\"active\":";
  out += alert.active ? "true" : "false";
  out += "}";
}

std::string error_json(std::string_view message) {
  std::string out = "{\"error\":";
  metrics::json_append_escaped(out, std::string_view(message));
  out += "}";
  return out;
}

// Tasklet id from "tasklet-12" or bare "12"; invalid id when unparseable.
TaskletId parse_tasklet_id(std::string_view text) {
  constexpr std::string_view kPrefix = "tasklet-";
  if (text.substr(0, kPrefix.size()) == kPrefix) {
    text.remove_prefix(kPrefix.size());
  }
  if (text.empty()) return TaskletId{};
  char* end = nullptr;
  const std::string copy(text);
  const std::uint64_t raw = std::strtoull(copy.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return TaskletId{};
  return TaskletId{raw};
}
}  // namespace

std::vector<health::HealthRule> parse_rules_lenient(
    const std::vector<std::string>& texts) {
  std::vector<health::HealthRule> rules;
  rules.reserve(texts.size());
  for (const std::string& text : texts) {
    auto parsed = health::parse_rule(text);
    if (!parsed.is_ok()) {
      TASKLETS_LOG(kWarn, kLog).kv("rule", text).kv(
          "error", parsed.status().message())
          << "skipping invalid health rule";
      continue;
    }
    rules.push_back(std::move(parsed).value());
  }
  return rules;
}

OpsPlane::OpsPlane(OpsConfig config, BrokerStateFn broker_state,
                   TraceStore* trace, bool start_sampler)
    : config_(std::move(config)),
      broker_state_(std::move(broker_state)),
      trace_(trace),
      history_(config_.series_capacity),
      engine_(parse_rules_lenient(config_.rules), trace) {
  if (config_.capture_logs) {
    // Tee the process logger into a ring for the admin `logs` command and
    // flight-recorder bundles; the previous sink keeps every record.
    log_ring_ = std::make_shared<RingBufferSink>(config_.log_buffer);
    previous_sink_ = Logger::instance().sink();
    Logger::instance().set_sink(std::make_shared<TeeSink>(
        std::vector<std::shared_ptr<LogSink>>{previous_sink_, log_ring_}));
    sink_installed_ = true;
  }
  if (config_.flight.enabled) {
    recorder_ = std::make_unique<FlightRecorder>(config_.flight);
    recorder_->set_log_source(log_ring_);
    if (trace_ != nullptr) {
      trace_->set_observer(
          [recorder = recorder_.get()](const Span& span) {
            recorder->record_span(span);
          });
    }
  }
  if (start_sampler) {
    // The sampler snapshots the registry into history_ itself, then calls
    // back for the rule pass.
    sampler_ = std::make_unique<metrics::MetricsSampler>(
        history_, config_.sample_interval,
        [this](SimTime now) { evaluate(now); });
  }
  if (config_.serve_admin) {
    admin_ = std::make_unique<net::AdminServer>(
        config_.admin_port,
        [this](const net::AdminRequest& request) { return handle(request); });
    if (!admin_->listening()) admin_.reset();
  }
}

OpsPlane::~OpsPlane() { stop(); }

void OpsPlane::sample(SimTime now) {
  history_.sample(metrics::MetricsRegistry::instance().snapshot(), now);
  evaluate(now);
}

void OpsPlane::evaluate(SimTime now) {
  SimTime expected = -1;
  first_sample_at_.compare_exchange_strong(expected, now,
                                           std::memory_order_relaxed);
  last_sample_at_.store(now, std::memory_order_relaxed);
  const std::vector<health::Alert> fired = engine_.evaluate(history_, now);
  if (recorder_ != nullptr && !fired.empty()) {
    // A rule newly fired: capture a postmortem bundle while the evidence is
    // still in the rings. Rate-limited inside the recorder.
    FlightRecorder::DumpContext ctx;
    ctx.reason = fired.front().rule;
    ctx.now = now;
    ctx.status_json = handle_status();
    ctx.alerts_json = handle_alerts();
    ctx.history = &history_;
    const auto result = recorder_->dump_to_file(ctx, /*triggered=*/true);
    if (!result.is_ok()) {
      TASKLETS_LOG(kDebug, kLog).kv("reason", ctx.reason).kv(
          "error", result.status().message())
          << "flight-recorder dump skipped";
    }
  }
}

void OpsPlane::stop() {
  // Sampler first (no new samples), then the listener — AdminServer::stop
  // joins in-flight handlers, so after this no request touches the plane.
  sampler_.reset();
  if (admin_ != nullptr) {
    admin_->stop();
    admin_.reset();
  }
  // Detach the span observer before the recorder dies, and give the logger
  // its previous sink back.
  if (trace_ != nullptr && recorder_ != nullptr) trace_->set_observer(nullptr);
  if (sink_installed_) {
    Logger::instance().set_sink(previous_sink_);
    previous_sink_.reset();
    sink_installed_ = false;
  }
}

SimTime OpsPlane::window_since(const net::AdminRequest& request) const {
  const std::string_view window = request.param("window");
  if (window.empty()) return metrics::kWholeSeries;
  const auto duration = health::parse_duration(window);
  if (!duration.is_ok()) return metrics::kWholeSeries;
  return now_anchor() - duration.value();
}

std::string OpsPlane::handle(const net::AdminRequest& request) {
  if (request.cmd == "status") return handle_status();
  if (request.cmd == "metrics") return handle_metrics(request);
  if (request.cmd == "series") return handle_series(request);
  if (request.cmd == "providers") return handle_providers();
  if (request.cmd == "alerts") return handle_alerts();
  if (request.cmd == "trace") return handle_trace(request);
  if (request.cmd == "top") return handle_top();
  if (request.cmd == "profile") return handle_profile(request);
  if (request.cmd == "logs") return handle_logs(request);
  if (request.cmd == "dump") return handle_dump();
  return error_json(
      "unknown command (try: status, metrics, series?name=, providers, "
      "alerts, trace?tasklet=, profile?tasklet=, logs?n=, dump, top)");
}

std::string OpsPlane::handle_status() {
  const BrokerState state = broker_state_ ? broker_state_() : BrokerState{};
  const SimTime first = first_sample_at_.load(std::memory_order_relaxed);
  const SimTime uptime = first >= 0 ? now_anchor() - first : 0;

  std::string out = "{\"uptime_ns\":";
  append_i64(out, uptime);
  out += ",\"samples\":";
  append_u64(out, history_.samples_taken());
  out += ",\"series\":";
  append_u64(out, history_.names().size());
  out += ",\"queue\":";
  append_u64(out, state.queue_length);
  out += ",\"pool\":";
  append_pool(out, state.pool);
  out += ",\"tasklets\":{\"submitted\":";
  append_u64(out, state.stats.tasklets_submitted);
  out += ",\"completed\":";
  append_u64(out, state.stats.tasklets_completed);
  out += ",\"failed\":";
  append_u64(out, state.stats.tasklets_failed);
  out += ",\"exhausted\":";
  append_u64(out, state.stats.tasklets_exhausted);
  out += ",\"deadline\":";
  append_u64(out, state.stats.tasklets_deadline);
  out += ",\"unschedulable\":";
  append_u64(out, state.stats.tasklets_unschedulable);
  out += "},\"attempts\":{\"issued\":";
  append_u64(out, state.stats.attempts_issued);
  out += ",\"ok\":";
  append_u64(out, state.stats.attempts_ok);
  out += ",\"lost\":";
  append_u64(out, state.stats.attempts_lost);
  out += ",\"reissues\":";
  append_u64(out, state.stats.reissues);
  out += ",\"timed_out\":";
  append_u64(out, state.stats.attempts_timed_out);
  out += ",\"straggler_reassigns\":";
  append_u64(out, state.stats.straggler_reassigns);
  out += ",\"speculations\":";
  append_u64(out, state.stats.speculations);
  out += ",\"migrations\":";
  append_u64(out, state.stats.migrations);
  out += "},\"alerts\":{\"fired\":";
  append_u64(out, engine_.fired_count());
  out += ",\"active\":";
  append_u64(out, engine_.active_alerts().size());
  out += "}}";
  return out;
}

std::string OpsPlane::handle_metrics(const net::AdminRequest& request) {
  std::string out = metrics::MetricsRegistry::instance().snapshot().to_json();
  const std::string_view window = request.param("window");
  if (window.empty()) return out;
  const auto duration = health::parse_duration(window);
  if (!duration.is_ok()) return out;
  // Graft windowed counter rates onto the snapshot object: replace the
  // closing brace with a "rates" section computed from the history.
  const SimTime since = now_anchor() - duration.value();
  out.pop_back();
  out += ",\"window_ns\":";
  append_i64(out, duration.value());
  out += ",\"rates\":{";
  bool first = true;
  for (const std::string& name : history_.names()) {
    const metrics::TimeSeries* series = history_.series(name);
    if (series == nullptr) continue;
    if (!first) out += ",";
    first = false;
    metrics::json_append_escaped(out, name);
    out += ":";
    append_num(out, series->rate_per_sec(since));
  }
  out += "}}";
  return out;
}

std::string OpsPlane::handle_series(const net::AdminRequest& request) {
  const std::string_view name = request.param("name");
  if (name.empty()) return error_json("series requires ?name=<metric>");
  const metrics::TimeSeries* series = history_.series(name);
  if (series == nullptr) return error_json("unknown series");
  const SimTime since = window_since(request);

  std::string out = "{\"name\":";
  metrics::json_append_escaped(out, name);
  out += ",\"points\":[";
  bool first = true;
  for (const metrics::SeriesPoint& point : series->window(since)) {
    if (!first) out += ",";
    first = false;
    out += "[";
    append_i64(out, point.at);
    out += ",";
    append_num(out, point.value);
    out += "]";
  }
  out += "],\"stats\":{\"count\":";
  append_u64(out, series->size());
  out += ",\"total_recorded\":";
  append_u64(out, series->total_recorded());
  out += ",\"latest\":";
  append_num(out, series->latest().value);
  out += ",\"delta\":";
  append_num(out, series->delta(since));
  out += ",\"rate_per_sec\":";
  append_num(out, series->rate_per_sec(since));
  out += ",\"min\":";
  append_num(out, series->min(since));
  out += ",\"max\":";
  append_num(out, series->max(since));
  out += ",\"mean\":";
  append_num(out, series->mean(since));
  out += ",\"p50\":";
  append_num(out, series->quantile(0.5, since));
  out += ",\"p95\":";
  append_num(out, series->quantile(0.95, since));
  out += ",\"p99\":";
  append_num(out, series->quantile(0.99, since));
  out += "}}";
  return out;
}

std::string OpsPlane::handle_providers() {
  const BrokerState state = broker_state_ ? broker_state_() : BrokerState{};
  std::string out = "{\"pool\":";
  append_pool(out, state.pool);
  out += ",\"providers\":[";
  bool first = true;
  for (const broker::ProviderView& view : state.providers) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":";
    metrics::json_append_escaped(out, view.id.to_string());
    out += ",\"class\":";
    metrics::json_append_escaped(out,
                                 proto::to_string(view.capability.device_class));
    out += ",\"slots\":";
    append_u64(out, view.capability.slots);
    out += ",\"busy\":";
    append_u64(out, view.busy_slots);
    out += ",\"advertised_speed\":";
    append_num(out, view.capability.speed_fuel_per_sec);
    out += ",\"measured_speed\":";
    append_num(out, view.measured_speed_fuel_per_sec);
    out += ",\"speed_samples\":";
    append_u64(out, view.speed_samples);
    out += ",\"effective_speed\":";
    append_num(out, view.effective_speed());
    out += ",\"reliability\":";
    append_num(out, view.observed_reliability);
    out += ",\"health\":";
    append_num(out, broker::health_score(view));
    out += ",\"warm\":";
    out += view.warm ? "true" : "false";
    out += ",\"completed\":";
    append_u64(out, view.completed);
    out += ",\"failed\":";
    append_u64(out, view.failed);
    out += ",\"straggler_fences\":";
    append_u64(out, view.straggler_fences);
    out += ",\"timed_out\":";
    append_u64(out, view.timed_out);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string OpsPlane::handle_alerts() {
  std::string out = "{\"fired\":";
  append_u64(out, engine_.fired_count());
  out += ",\"rules\":[";
  bool first = true;
  for (const health::HealthRule& rule : engine_.rules()) {
    if (!first) out += ",";
    first = false;
    metrics::json_append_escaped(out, rule.to_string());
  }
  out += "],\"active\":[";
  first = true;
  for (const health::Alert& alert : engine_.active_alerts()) {
    if (!first) out += ",";
    first = false;
    append_alert(out, alert);
  }
  out += "],\"log\":[";
  first = true;
  for (const health::Alert& alert : engine_.alert_log()) {
    if (!first) out += ",";
    first = false;
    append_alert(out, alert);
  }
  out += "]}";
  return out;
}

std::string OpsPlane::handle_trace(const net::AdminRequest& request) {
  if (trace_ == nullptr) {
    return error_json("tracing disabled (SystemConfig::tracing)");
  }
  const TaskletId id = parse_tasklet_id(request.param("tasklet"));
  if (!id.valid()) return error_json("trace requires ?tasklet=<id>");

  std::string out = "{\"tasklet\":";
  metrics::json_append_escaped(out, id.to_string());
  out += ",\"spans\":[";
  bool first = true;
  for (const Span& span : trace_->spans_for(id)) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    metrics::json_append_escaped(out, span.name);
    out += ",\"node\":";
    metrics::json_append_escaped(out, span.node.to_string());
    out += ",\"start\":";
    append_i64(out, span.start);
    out += ",\"end\":";
    append_i64(out, span.end);
    out += ",\"instant\":";
    out += span.instant ? "true" : "false";
    if (!span.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : span.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        metrics::json_append_escaped(out, key);
        out += ":";
        metrics::json_append_escaped(out, value);
      }
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string OpsPlane::handle_top() {
  const BrokerState state = broker_state_ ? broker_state_() : BrokerState{};
  char line[256];
  std::string text;

  std::snprintf(line, sizeof line,
                "pool: %zu online (%zu confident)  het=%.3f  "
                "mean=%.3g fuel/s  queue=%zu\n",
                state.pool.providers, state.pool.confident,
                state.pool.heterogeneity, state.pool.mean_speed,
                state.queue_length);
  text += line;
  std::snprintf(line, sizeof line,
                "tasklets: %" PRIu64 " submitted  %" PRIu64 " completed  %"
                PRIu64 " failed  %" PRIu64 " exhausted  %" PRIu64
                " deadline\n",
                state.stats.tasklets_submitted, state.stats.tasklets_completed,
                state.stats.tasklets_failed, state.stats.tasklets_exhausted,
                state.stats.tasklets_deadline);
  text += line;
  std::snprintf(line, sizeof line,
                "attempts: %" PRIu64 " issued  %" PRIu64 " ok  %" PRIu64
                " lost  %" PRIu64 " straggler-fenced  %" PRIu64
                " timed-out\n",
                state.stats.attempts_issued, state.stats.attempts_ok,
                state.stats.attempts_lost, state.stats.straggler_reassigns,
                state.stats.attempts_timed_out);
  text += line;
  std::snprintf(line, sizeof line,
                "alerts: %" PRIu64 " fired  %zu active\n",
                engine_.fired_count(), engine_.active_alerts().size());
  text += line;
  std::snprintf(line, sizeof line,
                "%-12s %-8s %5s %5s %12s %12s %7s %5s %7s %6s %5s\n",
                "NODE", "CLASS", "SLOTS", "BUSY", "SPEED(adv)", "SPEED(meas)",
                "HEALTH", "WARM", "COMPL", "FENCED", "MEMO");
  text += line;
  for (const broker::ProviderView& view : state.providers) {
    const auto memo_it = state.memo_by_provider.find(view.id);
    const std::uint64_t memo_entries =
        memo_it == state.memo_by_provider.end() ? 0 : memo_it->second;
    std::snprintf(line, sizeof line,
                  "%-12s %-8s %5u %5u %12.3g %12.3g %7.2f %5s %7" PRIu64
                  " %6" PRIu64 " %5" PRIu64 "\n",
                  view.id.to_string().c_str(),
                  std::string(proto::to_string(view.capability.device_class))
                      .c_str(),
                  view.capability.slots, view.busy_slots,
                  view.capability.speed_fuel_per_sec,
                  view.measured_speed_fuel_per_sec, broker::health_score(view),
                  view.warm ? "y" : "-", view.completed,
                  view.straggler_fences + view.timed_out, memo_entries);
    text += line;
  }
  for (const health::Alert& alert : engine_.active_alerts()) {
    std::snprintf(line, sizeof line, "ALERT %s: %s = %.6g (threshold %.6g)\n",
                  alert.rule.c_str(), alert.series.c_str(), alert.value,
                  alert.threshold);
    text += line;
  }

  // Phase attribution over recent spans: the flight recorder's ring when one
  // runs (bounded, cheap), else the store while it is still small.
  std::vector<Span> spans;
  if (recorder_ != nullptr) {
    spans = recorder_->recent_spans();
  } else if (trace_ != nullptr && trace_->size() <= 65536) {
    spans = trace_->all();
  }
  if (!spans.empty()) {
    const analysis::WaitGraph graph = analysis::analyze_all(spans);
    if (graph.tasklets > 0) {
      std::snprintf(line, sizeof line,
                    "%-14s %7s %9s %9s %9s   (last %zu tasklets)\n", "PHASE",
                    "SHARE", "P50", "P95", "P99", graph.tasklets);
      text += line;
      for (std::size_t i = 0; i < analysis::kPhaseCount; ++i) {
        const analysis::PhaseAggregate& agg = graph.phases[i];
        const double share =
            graph.total > 0 ? 100.0 * static_cast<double>(agg.total) /
                                  static_cast<double>(graph.total)
                            : 0.0;
        std::snprintf(
            line, sizeof line, "%-14s %6.1f%% %9s %9s %9s\n",
            std::string(analysis::phase_name(static_cast<analysis::Phase>(i)))
                .c_str(),
            share,
            analysis::format_duration(static_cast<SimTime>(agg.quantile(0.5)))
                .c_str(),
            analysis::format_duration(static_cast<SimTime>(agg.quantile(0.95)))
                .c_str(),
            analysis::format_duration(static_cast<SimTime>(agg.quantile(0.99)))
                .c_str());
        text += line;
      }
    }
  }

  std::string out = "{\"text\":";
  metrics::json_append_escaped(out, text);
  out += "}";
  return out;
}

std::vector<Span> OpsPlane::spans_for_analysis(TaskletId id) const {
  std::vector<Span> spans;
  if (trace_ != nullptr) spans = trace_->spans_for(id);
  if (spans.empty() && recorder_ != nullptr) {
    spans = recorder_->recent_spans_for(id);
  }
  return spans;
}

std::string OpsPlane::handle_profile(const net::AdminRequest& request) {
  if (trace_ == nullptr && recorder_ == nullptr) {
    return error_json("tracing disabled (SystemConfig::tracing)");
  }
  const TaskletId id = parse_tasklet_id(request.param("tasklet"));
  if (!id.valid()) return error_json("profile requires ?tasklet=<id>");
  const std::vector<Span> spans = spans_for_analysis(id);
  if (spans.empty()) return error_json("no spans for " + id.to_string());

  const analysis::TaskletTrace trace = analysis::build_tasklet_trace(spans);
  std::string out = "{\"profile\":";
  out += analysis::breakdown_json(analysis::analyze_tasklet(trace));
  out += ",\"critical_path\":";
  metrics::json_append_escaped(out, analysis::critical_path_report(trace));
  out += "}";
  return out;
}

std::string OpsPlane::handle_logs(const net::AdminRequest& request) {
  if (log_ring_ == nullptr) {
    return error_json("log capture disabled (OpsConfig::capture_logs)");
  }
  std::size_t n = 50;
  const std::string_view param = request.param("n");
  if (!param.empty()) {
    char* end = nullptr;
    const std::string copy(param);
    const unsigned long long parsed = std::strtoull(copy.c_str(), &end, 10);
    if (end != nullptr && *end == '\0' && parsed > 0) {
      n = static_cast<std::size_t>(parsed);
    }
  }
  const std::vector<std::string> lines = log_ring_->lines();
  const std::size_t first_index = lines.size() > n ? lines.size() - n : 0;
  std::string out = "{\"count\":";
  append_u64(out, lines.size() - first_index);
  out += ",\"buffered\":";
  append_u64(out, lines.size());
  out += ",\"lines\":[";
  for (std::size_t i = first_index; i < lines.size(); ++i) {
    if (i > first_index) out += ",";
    metrics::json_append_escaped(out, lines[i]);
  }
  out += "]}";
  return out;
}

std::string OpsPlane::handle_dump() {
  if (recorder_ == nullptr) {
    return error_json("flight recorder disabled (OpsConfig::flight)");
  }
  FlightRecorder::DumpContext ctx;
  ctx.reason = "admin";
  ctx.now = now_anchor();
  ctx.status_json = handle_status();
  ctx.alerts_json = handle_alerts();
  ctx.history = &history_;
  const auto result = recorder_->dump_to_file(ctx, /*triggered=*/false);
  if (!result.is_ok()) return error_json(result.status().message());
  std::string out = "{\"path\":";
  metrics::json_append_escaped(out, result.value());
  out += ",\"dumps\":";
  append_u64(out, recorder_->dumps_written());
  out += "}";
  return out;
}

}  // namespace tasklets::core

// SimCluster: the deterministic discrete-event runtime.
//
// Runs the *same* broker/provider/consumer actors as the threaded runtime,
// but over a virtual-time engine with explicit models for:
//   * link latency + bandwidth per node (message delivery delay),
//   * device speed (execution time = startup + fuel/speed),
//   * churn (exponential online sessions / downtime per device profile),
//   * silent result corruption (per-profile fault rate).
//
// Every run is bit-reproducible from the seed, which is what makes the
// paper-style experiments (provider-count sweeps, churn sweeps, policy
// comparisons) possible on one machine.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "broker/broker.hpp"
#include "consumer/consumer.hpp"
#include "core/ops.hpp"
#include "provider/provider.hpp"
#include "sim/engine.hpp"
#include "sim/profiles.hpp"

namespace tasklets::core {

struct SimConfig {
  std::string scheduler = "qoc_aware";
  // When set, overrides `scheduler`: used to inject custom policies
  // (ablation studies, tests).
  std::function<std::unique_ptr<broker::Scheduler>()> scheduler_factory;
  broker::BrokerConfig broker{};
  // Applied to every consumer the cluster creates (`trace` below still
  // overrides the consumer's trace sink).
  consumer::ConsumerConfig consumer{};
  std::uint64_t seed = 42;
  // The broker's own link (it usually sits on good infrastructure).
  SimTime broker_link_latency = 500 * kMicrosecond;
  double broker_bandwidth_bps = 1e9;
  // Consumers' links.
  SimTime consumer_link_latency = 1 * kMillisecond;
  double consumer_bandwidth_bps = 100e6;
  tvm::ExecLimits exec_limits{};
  // Span collector (caller-owned, must outlive the cluster); when set it is
  // wired into every actor, so whole-lifecycle traces come out of sim runs
  // with virtual timestamps. nullptr disables tracing.
  TraceStore* trace = nullptr;
  // Live ops plane over virtual time: metrics are sampled from a recurring
  // engine event every ops.sample_interval, and health rules evaluate on the
  // same cadence with virtual timestamps. serve_admin is forced off — a
  // socket thread cannot answer consistently while the sim thread
  // single-steps virtual time; query via ops()->handle() instead.
  OpsConfig ops{};
};

class SimCluster {
 public:
  explicit SimCluster(SimConfig config = {});
  ~SimCluster();

  SimCluster(const SimCluster&) = delete;
  SimCluster& operator=(const SimCluster&) = delete;

  // --- topology (call before or between runs) --------------------------------
  NodeId add_provider(const sim::DeviceProfile& profile);
  // Adds `count` providers with the same profile.
  std::vector<NodeId> add_providers(const sim::DeviceProfile& profile,
                                    std::size_t count);
  NodeId add_consumer(std::string locality = {});

  // --- workload ----------------------------------------------------------------
  // Submits from `consumer` (invalid id = the default consumer, created on
  // demand). The submission is scheduled at the current virtual time.
  TaskletId submit(proto::TaskletBody body, proto::Qoc qoc = {},
                   NodeId consumer = {}, JobId job = {});
  // Schedules a submission at a future virtual time (open-loop arrivals).
  TaskletId submit_at(SimTime when, proto::TaskletBody body, proto::Qoc qoc = {},
                      NodeId consumer = {}, JobId job = {});

  // Submits a dataflow graph (protocol r4). Nodes reference each other by
  // index through their `inputs` edges; `outputs` empty = every sink node.
  // The terminal DagStatus is collected like flat reports and counts toward
  // quiescence.
  DagId submit_dag(std::vector<dag::DagNode> nodes, proto::Qoc qoc = {},
                   NodeId consumer = {}, JobId job = {},
                   std::vector<std::uint32_t> outputs = {});
  DagId submit_dag_at(SimTime when, std::vector<dag::DagNode> nodes,
                      proto::Qoc qoc = {}, NodeId consumer = {}, JobId job = {},
                      std::vector<std::uint32_t> outputs = {});

  // --- execution ------------------------------------------------------------------
  // Runs until every submitted tasklet has a terminal report, or virtual
  // time exceeds `max_virtual_time`. Returns true on full quiescence.
  bool run_until_quiescent(SimTime max_virtual_time = 3600 * kSecond);
  // Runs the clock forward by `duration` regardless of completion.
  void run_for(SimTime duration);

  // --- inspection -----------------------------------------------------------------
  [[nodiscard]] SimTime now() const;
  [[nodiscard]] const std::vector<proto::TaskletReport>& reports() const noexcept {
    return reports_;
  }
  [[nodiscard]] const proto::TaskletReport* report_for(TaskletId id) const;
  [[nodiscard]] broker::Broker& broker() noexcept { return *broker_; }
  [[nodiscard]] sim::Engine& engine() noexcept { return *engine_; }
  // The ops plane, or nullptr unless SimConfig::ops.enabled.
  [[nodiscard]] OpsPlane* ops() noexcept { return ops_.get(); }
  [[nodiscard]] std::size_t submitted() const noexcept { return submitted_; }
  [[nodiscard]] std::size_t completed_ok() const noexcept;
  // Terminal DAG statuses, in arrival order.
  [[nodiscard]] const std::vector<proto::DagStatus>& dag_statuses() const noexcept {
    return dag_statuses_;
  }
  [[nodiscard]] const proto::DagStatus* dag_status_for(DagId id) const;
  [[nodiscard]] std::size_t dags_submitted() const noexcept {
    return dags_submitted_;
  }
  // Total accounting cost across completed tasklets (fuel * provider rate).
  [[nodiscard]] double total_cost() const noexcept { return total_cost_; }
  // Modelled bytes-on-wire, total and by message kind (proto::message_name).
  // What the bandwidth/latency model charged — the basis for the E9
  // dedup/memoization byte-savings measurements.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept { return wire_bytes_; }
  [[nodiscard]] const std::unordered_map<std::string, std::uint64_t>&
  wire_bytes_by_message() const noexcept {
    return wire_bytes_by_message_;
  }

 private:
  class SimExecution;
  struct Node;

  Node& node(NodeId id);
  void dispatch(proto::Envelope envelope);
  void process_outbox(proto::Outbox& out);
  void arm_timer(NodeId node_id, const proto::TimerRequest& request);
  void schedule_churn(NodeId provider_id);
  // Replays a profile's explicit churn_trace (absolute offline/online times).
  void schedule_churn_trace(NodeId provider_id);
  // One availability transition (crash or graceful drain per the profile).
  void take_offline(NodeId provider_id);
  void bring_online(NodeId provider_id);
  NodeId default_consumer();
  // Recurring virtual-time event feeding the ops plane's time series.
  void schedule_ops_sample();

  SimConfig config_;
  std::unique_ptr<sim::Engine> engine_;
  Rng rng_;
  IdGenerator<NodeId> node_ids_;
  IdGenerator<TaskletId> tasklet_ids_;
  IdGenerator<JobId> job_ids_;
  IdGenerator<DagId> dag_ids_;
  std::shared_ptr<provider::VmExecutor> executor_;

  NodeId broker_id_;
  broker::Broker* broker_ = nullptr;
  NodeId default_consumer_id_;
  std::unique_ptr<OpsPlane> ops_;

  std::unordered_map<NodeId, std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::uint64_t, std::uint64_t> timer_generations_;

  std::size_t submitted_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::unordered_map<std::string, std::uint64_t> wire_bytes_by_message_;
  std::vector<proto::TaskletReport> reports_;
  std::unordered_map<TaskletId, std::size_t> report_index_;
  std::size_t dags_submitted_ = 0;
  std::vector<proto::DagStatus> dag_statuses_;
  std::unordered_map<DagId, std::size_t> dag_status_index_;
  double total_cost_ = 0.0;
};

}  // namespace tasklets::core

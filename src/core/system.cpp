#include "core/system.hpp"

#include <chrono>

#include "common/log.hpp"
#include "net/tcp.hpp"
#include "provider/benchmark.hpp"
#include "tcl/compiler.hpp"

namespace tasklets::core {

Result<proto::VmBody> compile_tasklet(std::string_view tcl_source,
                                      std::vector<tvm::HostArg> args,
                                      std::string_view entry) {
  tcl::CompileOptions options;
  options.entry = entry;
  TASKLETS_ASSIGN_OR_RETURN(auto program, tcl::compile(tcl_source, options));
  proto::VmBody body;
  body.program = program.serialize();
  body.args = std::move(args);
  return body;
}

// Per-provider execution service: a worker pool sized to the slot count, an
// optional emulated slowdown (sleeps proportionally to execution time) and
// fault injection. Completions are posted back into the owning actor host.
class TaskletSystem::ProviderExecution final : public provider::ExecutionService {
 public:
  ProviderExecution(std::shared_ptr<provider::VmExecutor> executor,
                    std::uint32_t slots, double slowdown, double fault_rate,
                    std::uint64_t fault_seed)
      : executor_(std::move(executor)),
        slowdown_(slowdown),
        fault_rate_(fault_rate),
        fault_rng_(fault_seed),
        pool_(slots) {}

  void set_owner(net::ActorHost* owner) noexcept {
    owner_.store(owner, std::memory_order_release);
  }

  // Enables "vm" spans for executions on this provider. Set before the agent
  // starts (same ordering requirement as set_owner).
  void set_trace(TraceStore* store, NodeId node) noexcept {
    trace_ = store;
    node_ = node;
  }

  void execute(provider::ExecRequest request, provider::ExecDone done) override {
    pool_.submit([this, request = std::move(request), done = std::move(done)] {
      const SteadyClock clock;
      const SimTime start = clock.now();
      // Sliced execution so a drain request can checkpoint in-flight work at
      // the next slice boundary (~tens of ms of compute).
      constexpr std::uint64_t kFuelSlice = 2'000'000;
      proto::AttemptOutcome outcome =
          executor_->run_sliced(request, kFuelSlice, drain_);
      if (slowdown_ > 1.0) {
        const SimTime elapsed = clock.now() - start;
        const auto extra = static_cast<SimTime>(
            static_cast<double>(elapsed) * (slowdown_ - 1.0));
        std::this_thread::sleep_for(std::chrono::nanoseconds(extra));
      }
      if (fault_rate_ > 0.0) {
        const std::scoped_lock lock(fault_mutex_);
        outcome = provider::maybe_corrupt(std::move(outcome), fault_rate_,
                                          fault_rng_);
      }
      net::ActorHost* owner = owner_.load(std::memory_order_acquire);
      if (owner == nullptr) return;
      // The worker's wall clock and the actor host's `now` share no epoch, so
      // the "vm" span is anchored to the completion's host timestamp and
      // extends backwards by the measured execution time.
      const SimTime elapsed = clock.now() - start;
      owner->post_closure([this, outcome = std::move(outcome),
                           done = std::move(done), elapsed,
                           ctx = request.trace, tasklet = request.tasklet](
                              SimTime now, proto::Outbox& out) mutable {
        if (trace_ != nullptr && ctx.active()) {
          Span span;
          span.trace_id = ctx.trace_id;
          span.parent_span = ctx.parent_span;
          span.name = "vm";
          span.node = node_;
          span.tasklet = tasklet;
          span.start = now > elapsed ? now - elapsed : 0;
          span.end = now;
          span.args.emplace_back("status",
                                 std::string(proto::to_string(outcome.status)));
          span.args.emplace_back("instructions",
                                 std::to_string(outcome.instructions));
          span.args.emplace_back("fuel", std::to_string(outcome.fuel_used));
          trace_->add(std::move(span));
        }
        done(std::move(outcome), now, out);
      });
    });
  }

  void stop() { pool_.stop(); }

  // In-flight work checkpoints at the next slice boundary and is reported
  // kSuspended; new work is never drained (the agent rejects it while
  // offline anyway).
  void drain() noexcept { drain_.store(true, std::memory_order_relaxed); }

 private:
  std::shared_ptr<provider::VmExecutor> executor_;
  std::atomic<bool> drain_{false};
  double slowdown_;
  double fault_rate_;
  std::mutex fault_mutex_;
  Rng fault_rng_;
  std::atomic<net::ActorHost*> owner_ = nullptr;
  TraceStore* trace_ = nullptr;
  NodeId node_;
  ThreadPool pool_;
};

TaskletSystem::TaskletSystem(SystemConfig config)
    : config_(std::move(config)),
      executor_(std::make_shared<provider::VmExecutor>(config_.exec_limits)) {
  if (config_.tracing) {
    trace_ = std::make_unique<TraceStore>();
    config_.broker.trace = trace_.get();
    config_.consumer.trace = trace_.get();
  }
  if (config_.transport == Transport::kTcp) {
    runtime_ = std::make_unique<net::TcpRuntime>();
  } else {
    runtime_ = std::make_unique<net::InProcRuntime>();
  }
  if (config_.fault_plan.has_value()) {
    auto faulty = std::make_unique<net::FaultyRuntime>(std::move(runtime_),
                                                       *config_.fault_plan);
    faults_ = faulty.get();
    runtime_ = std::move(faulty);
  }
  auto scheduler_result = broker::make_scheduler(config_.scheduler);
  std::unique_ptr<broker::Scheduler> scheduler;
  if (scheduler_result.is_ok()) {
    scheduler = std::move(scheduler_result).value();
  } else {
    // Configuration error: fall back loudly to the default policy.
    TASKLETS_LOG(kError, "system") << scheduler_result.status().to_string()
                                   << "; using qoc_aware";
    scheduler = broker::make_qoc_aware();
  }
  broker_id_ = node_ids_.next();
  auto broker_actor = std::make_unique<broker::Broker>(
      broker_id_, std::move(scheduler), config_.broker);
  broker_ = broker_actor.get();
  broker_host_ = &runtime_->add(std::move(broker_actor));

  consumer_id_ = node_ids_.next();
  auto consumer_actor = std::make_unique<consumer::ConsumerAgent>(
      consumer_id_, broker_id_, config_.consumer_locality, config_.consumer);
  consumer_ = consumer_actor.get();
  consumer_host_ = &runtime_->add(std::move(consumer_actor));

  if (config_.ops.enabled) {
    // Admin requests read broker state via the broker's actor host, so the
    // read is serialized with message handling like every other access.
    broker::Broker* broker = broker_;
    net::ActorHost* host = broker_host_;
    auto state_fn = [broker, host]() {
      auto promise = std::make_shared<std::promise<OpsPlane::BrokerState>>();
      auto future = promise->get_future();
      host->post_closure([broker, promise](SimTime, proto::Outbox&) {
        OpsPlane::BrokerState state;
        state.stats = broker->stats();
        state.providers = broker->provider_views();
        state.pool = broker::compute_pool_stats(state.providers);
        state.queue_length = broker->queue_length();
        broker->memo_table().for_each(
            [&state](const store::MemoKey&, const store::MemoEntry& entry) {
              ++state.memo_by_provider[entry.provider];
            });
        promise->set_value(std::move(state));
      });
      return future.get();
    };
    ops_ = std::make_unique<OpsPlane>(config_.ops, std::move(state_fn),
                                      trace_.get(), /*start_sampler=*/true);
  }
}

TaskletSystem::~TaskletSystem() { stop(); }

void TaskletSystem::stop() {
  {
    const std::scoped_lock lock(providers_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  // Ops plane first: its stop() joins the sampler and every in-flight admin
  // handler, so nothing reaches into the broker host after this line.
  if (ops_ != nullptr) ops_->stop();
  // Pools first: stop() joins in-flight executions, whose completion
  // closures post into actor hosts, so the hosts must still be alive.
  // Actors submitting to a stopped pool is harmless (submit is a no-op).
  {
    const std::scoped_lock lock(providers_mutex_);
    for (auto& execution : provider_executions_) execution->stop();
  }
  runtime_->stop_all();
}

std::size_t TaskletSystem::provider_count() const noexcept {
  const std::scoped_lock lock(providers_mutex_);
  return provider_executions_.size();
}

NodeId TaskletSystem::add_provider(ProviderOptions options) {
  proto::Capability capability = options.capability;
  if (capability.slots == 0) capability.slots = 1;
  if (capability.speed_fuel_per_sec <= 0.0) {
    capability.speed_fuel_per_sec =
        provider::measure_speed(*executor_) / options.slowdown;
  }
  auto execution = std::make_unique<ProviderExecution>(
      executor_, capability.slots, options.slowdown, options.fault_rate,
      options.fault_seed);
  const NodeId id = node_ids_.next();
  provider::ProviderConfig provider_config;
  provider_config.heartbeat_interval = config_.broker.heartbeat_interval;
  provider_config.trace = trace_.get();
  execution->set_trace(trace_.get(), id);
  auto agent = std::make_unique<provider::ProviderAgent>(
      id, broker_id_, std::move(capability), *execution, provider_config);
  // The execution service must know its host before the agent registers
  // (registration can trigger an immediate assignment).
  net::ActorHost& host = runtime_->add(std::move(agent), /*autostart=*/false);
  execution->set_owner(&host);
  host.start();
  const std::scoped_lock lock(providers_mutex_);
  providers_by_id_.emplace(id, std::make_pair(execution.get(), &host));
  provider_executions_.push_back(std::move(execution));
  return id;
}

void TaskletSystem::drain_provider(NodeId id) {
  ProviderExecution* execution = nullptr;
  net::ActorHost* host = nullptr;
  {
    const std::scoped_lock lock(providers_mutex_);
    const auto it = providers_by_id_.find(id);
    if (it == providers_by_id_.end()) return;
    execution = it->second.first;
    host = it->second.second;
  }
  // Order matters: deregister first so the broker stops assigning, then flip
  // the drain flag so running slices checkpoint.
  host->post_closure([host](SimTime, proto::Outbox& out) {
    auto& agent = static_cast<provider::ProviderAgent&>(host->actor());
    agent.leave(out);
  });
  execution->drain();
}

std::future<proto::TaskletReport> TaskletSystem::submit(proto::TaskletBody body,
                                                        proto::Qoc qoc, JobId job) {
  proto::TaskletSpec spec;
  spec.id = tasklet_ids_.next();
  spec.job = job.valid() ? job : job_ids_.next();
  spec.body = std::move(body);
  spec.qoc = qoc;

  auto promise = std::make_shared<std::promise<proto::TaskletReport>>();
  std::future<proto::TaskletReport> future = promise->get_future();
  consumer::ConsumerAgent* agent = consumer_;
  consumer_host_->post_closure(
      [agent, spec = std::move(spec), promise](SimTime now,
                                               proto::Outbox& out) mutable {
        agent->submit(std::move(spec),
                      [promise](const proto::TaskletReport& report) {
                        promise->set_value(report);
                      },
                      now, out);
      });
  return future;
}

std::future<proto::DagStatus> TaskletSystem::submit_dag(
    std::vector<dag::DagNode> nodes, proto::Qoc qoc,
    std::vector<std::uint32_t> outputs) {
  dag::DagSpec spec;
  spec.id = dag_ids_.next();
  spec.job = job_ids_.next();
  spec.nodes = std::move(nodes);
  spec.qoc = qoc;
  spec.outputs = std::move(outputs);

  auto promise = std::make_shared<std::promise<proto::DagStatus>>();
  std::future<proto::DagStatus> future = promise->get_future();
  consumer::ConsumerAgent* agent = consumer_;
  consumer_host_->post_closure(
      [agent, spec = std::move(spec), promise](SimTime now,
                                               proto::Outbox& out) mutable {
        agent->submit_dag(std::move(spec),
                          [promise](const proto::DagStatus& status) {
                            promise->set_value(status);
                          },
                          /*node_handler=*/nullptr, now, out);
      });
  return future;
}

std::vector<std::future<proto::TaskletReport>> TaskletSystem::submit_batch(
    std::vector<proto::TaskletBody> bodies, proto::Qoc qoc) {
  const JobId job = job_ids_.next();
  std::vector<std::future<proto::TaskletReport>> futures;
  futures.reserve(bodies.size());
  for (auto& body : bodies) {
    futures.push_back(submit(std::move(body), qoc, job));
  }
  return futures;
}

metrics::MetricsSnapshot TaskletSystem::metrics_snapshot() {
  return metrics::MetricsRegistry::instance().snapshot();
}

broker::BrokerStats TaskletSystem::broker_stats() {
  auto promise = std::make_shared<std::promise<broker::BrokerStats>>();
  auto future = promise->get_future();
  broker::Broker* broker = broker_;
  broker_host_->post_closure(
      [broker, promise](SimTime, proto::Outbox&) {
        promise->set_value(broker->stats());
      });
  return future.get();
}

}  // namespace tasklets::core

// Standard TCL computation kernels.
//
// These are the workloads the examples and benchmark harnesses distribute:
// classic embarrassingly parallel kernels (Mandelbrot rows, Monte-Carlo
// sampling, matrix blocks) plus calibration/microbenchmark loops. Each is a
// complete TCL translation unit whose `main` has the documented signature.
#pragma once

#include <string_view>

namespace tasklets::core::kernels {

// int main(int n) -> n-th Fibonacci number (naive recursion; exponential
// work, the standard middleware-overhead microkernel).
extern const std::string_view kFib;

// int[] main(int width, int row, int height, float x0, float x1, float y0,
//            float y1, int max_iter)
// -> iteration counts for one Mandelbrot image row.
extern const std::string_view kMandelbrotRow;

// int main(int samples, int seed) -> number of pseudo-random points falling
// inside the unit circle (Monte-Carlo pi; LCG-based, deterministic per seed).
extern const std::string_view kMonteCarloPi;

// float[] main(float[] a, float[] b, int n) -> n*n row-major matrix product.
extern const std::string_view kMatMul;

// int main(int n) -> number of primes < n (Eratosthenes sieve).
extern const std::string_view kSieve;

// float main(float[] a, float[] b) -> dot product (len(a) == len(b)).
extern const std::string_view kDot;

// int main(int iterations) -> busy integer loop, returns a checksum. Used
// for calibration and as a "known fuel" workload.
extern const std::string_view kSpin;

// float[] main(float[] px, float[] py, float[] vx, float[] vy, float[] m,
//              float dt, int steps)
// -> n-body simulation (O(n^2) gravity), returns final x positions.
extern const std::string_view kNBody;

// int[] main(int[] xs) -> xs sorted ascending (in-place iterative
// quicksort with an explicit stack; exercises arrays and deep control flow).
extern const std::string_view kQuicksort;

}  // namespace tasklets::core::kernels

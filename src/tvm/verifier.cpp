#include "tvm/verifier.hpp"

#include <deque>
#include <string>
#include <vector>

namespace tasklets::tvm {

namespace {

std::string at(const Function& fn, std::size_t ip) {
  return "in '" + fn.name + "' at instruction " + std::to_string(ip);
}

// Resolves the stack effect of an instruction; pops for calls and intrinsics
// come from the callee signature.
Status stack_effect(const Program& program, const Function& fn, std::size_t ip,
                    int& pops, int& pushes) {
  const Instr& instr = fn.code[ip];
  const OpInfo& info = op_info(instr.op);
  pops = info.pops;
  pushes = info.pushes;
  if (instr.op == OpCode::kCall) {
    const auto callee = static_cast<std::uint64_t>(instr.operand);
    pops = static_cast<int>(program.function(static_cast<std::uint32_t>(callee)).arity);
  } else if (instr.op == OpCode::kIntrinsic) {
    pops = intrinsic_info(static_cast<Intrinsic>(instr.operand)).arity;
  }
  return Status::ok();
}

Status verify_operands(const Program& program, const Function& fn) {
  const auto code_len = static_cast<std::int64_t>(fn.code.size());
  for (std::size_t ip = 0; ip < fn.code.size(); ++ip) {
    const Instr& instr = fn.code[ip];
    if (static_cast<std::uint8_t>(instr.op) >= kNumOpCodes) {
      return make_error(StatusCode::kDataLoss, "unknown opcode " + at(fn, ip));
    }
    switch (instr.op) {
      case OpCode::kLoadLocal:
      case OpCode::kStoreLocal:
        if (instr.operand < 0 || instr.operand >= static_cast<std::int64_t>(fn.num_locals)) {
          return make_error(StatusCode::kOutOfRange,
                            "local slot out of range " + at(fn, ip));
        }
        break;
      case OpCode::kJump:
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNotZero:
        if (instr.operand < 0 || instr.operand >= code_len) {
          return make_error(StatusCode::kOutOfRange,
                            "jump target out of range " + at(fn, ip));
        }
        break;
      case OpCode::kCall:
        if (instr.operand < 0 ||
            instr.operand >= static_cast<std::int64_t>(program.function_count())) {
          return make_error(StatusCode::kOutOfRange,
                            "call target out of range " + at(fn, ip));
        }
        break;
      case OpCode::kIntrinsic:
        if (instr.operand < 0 || instr.operand >= kNumIntrinsics) {
          return make_error(StatusCode::kOutOfRange,
                            "unknown intrinsic " + at(fn, ip));
        }
        break;
      default:
        break;
    }
  }
  return Status::ok();
}

// Flow-insensitive-in, flow-sensitive-out stack-depth analysis: propagates a
// single depth to each instruction and rejects merge-point disagreements.
// On success `depths_out` (when non-null) receives the depth before each
// instruction (-1 = unreachable).
Status verify_stack(const Program& program, const Function& fn,
                    const VerifyLimits& limits,
                    std::vector<int>* depths_out = nullptr) {
  if (fn.code.empty()) {
    return make_error(StatusCode::kInvalidArgument,
                      "function '" + fn.name + "' has empty code");
  }
  constexpr int kUnvisited = -1;
  std::vector<int> depth_at(fn.code.size(), kUnvisited);
  std::deque<std::size_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);

  auto propagate = [&](std::size_t target, int depth, std::size_t from) -> Status {
    if (target >= fn.code.size()) {
      return make_error(StatusCode::kInvalidArgument,
                        "control falls off code end " + at(fn, from));
    }
    if (depth_at[target] == kUnvisited) {
      depth_at[target] = depth;
      worklist.push_back(target);
    } else if (depth_at[target] != depth) {
      return make_error(StatusCode::kInvalidArgument,
                        "inconsistent stack depth at merge " + at(fn, target));
    }
    return Status::ok();
  };

  while (!worklist.empty()) {
    const std::size_t ip = worklist.front();
    worklist.pop_front();
    const Instr& instr = fn.code[ip];
    int pops = 0, pushes = 0;
    TASKLETS_RETURN_IF_ERROR(stack_effect(program, fn, ip, pops, pushes));
    const int depth = depth_at[ip];
    if (depth < pops) {
      return make_error(StatusCode::kInvalidArgument,
                        "operand stack underflow " + at(fn, ip));
    }
    const int next = depth - pops + pushes;
    if (next > static_cast<int>(limits.max_stack_depth)) {
      return make_error(StatusCode::kResourceExhausted,
                        "static stack depth exceeds limit " + at(fn, ip));
    }
    switch (instr.op) {
      case OpCode::kReturn:
      case OpCode::kHalt:
        // `ret`/`halt` consume the result; nothing may be left beneath it.
        if (depth != 1) {
          return make_error(StatusCode::kInvalidArgument,
                            "non-singleton stack at return " + at(fn, ip));
        }
        break;
      case OpCode::kJump:
        TASKLETS_RETURN_IF_ERROR(
            propagate(static_cast<std::size_t>(instr.operand), next, ip));
        break;
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNotZero:
        TASKLETS_RETURN_IF_ERROR(
            propagate(static_cast<std::size_t>(instr.operand), next, ip));
        TASKLETS_RETURN_IF_ERROR(propagate(ip + 1, next, ip));
        break;
      default:
        TASKLETS_RETURN_IF_ERROR(propagate(ip + 1, next, ip));
        break;
    }
  }
  if (depths_out != nullptr) *depths_out = depth_at;
  return Status::ok();
}

}  // namespace

Status verify(const Program& program, const VerifyLimits& limits) {
  if (program.function_count() == 0) {
    return make_error(StatusCode::kInvalidArgument, "program has no functions");
  }
  if (program.entry() >= program.function_count()) {
    return make_error(StatusCode::kOutOfRange, "entry index out of range");
  }
  for (const auto& fn : program.functions()) {
    if (fn.arity > fn.num_locals) {
      return make_error(StatusCode::kInvalidArgument,
                        "arity exceeds locals in '" + fn.name + "'");
    }
    TASKLETS_RETURN_IF_ERROR(verify_operands(program, fn));
    TASKLETS_RETURN_IF_ERROR(verify_stack(program, fn, limits));
  }
  return Status::ok();
}

Result<std::vector<std::vector<int>>> stack_depth_map(const Program& program,
                                                      const VerifyLimits& limits) {
  if (program.function_count() == 0) {
    return make_error(StatusCode::kInvalidArgument, "program has no functions");
  }
  if (program.entry() >= program.function_count()) {
    return make_error(StatusCode::kOutOfRange, "entry index out of range");
  }
  std::vector<std::vector<int>> map;
  map.reserve(program.function_count());
  for (const auto& fn : program.functions()) {
    if (fn.arity > fn.num_locals) {
      return make_error(StatusCode::kInvalidArgument,
                        "arity exceeds locals in '" + fn.name + "'");
    }
    TASKLETS_RETURN_IF_ERROR(verify_operands(program, fn));
    std::vector<int> depths;
    TASKLETS_RETURN_IF_ERROR(verify_stack(program, fn, limits, &depths));
    map.push_back(std::move(depths));
  }
  return map;
}

}  // namespace tasklets::tvm

#include "tvm/verifier.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tasklets::tvm {

namespace {

std::string at(const Function& fn, std::size_t ip) {
  return "in '" + fn.name + "' at instruction " + std::to_string(ip);
}

// Resolves the stack effect of an instruction; pops for calls and intrinsics
// come from the callee signature.
Status stack_effect(const Program& program, const Function& fn, std::size_t ip,
                    int& pops, int& pushes) {
  const Instr& instr = fn.code[ip];
  const OpInfo& info = op_info(instr.op);
  pops = info.pops;
  pushes = info.pushes;
  if (instr.op == OpCode::kCall) {
    const auto callee = static_cast<std::uint64_t>(instr.operand);
    pops = static_cast<int>(program.function(static_cast<std::uint32_t>(callee)).arity);
  } else if (instr.op == OpCode::kIntrinsic) {
    pops = intrinsic_info(static_cast<Intrinsic>(instr.operand)).arity;
  }
  return Status::ok();
}

Status verify_operands(const Program& program, const Function& fn) {
  const auto code_len = static_cast<std::int64_t>(fn.code.size());
  for (std::size_t ip = 0; ip < fn.code.size(); ++ip) {
    const Instr& instr = fn.code[ip];
    if (static_cast<std::uint8_t>(instr.op) >= kNumOpCodes) {
      return make_error(StatusCode::kDataLoss, "unknown opcode " + at(fn, ip));
    }
    switch (instr.op) {
      case OpCode::kLoadLocal:
      case OpCode::kStoreLocal:
        if (instr.operand < 0 || instr.operand >= static_cast<std::int64_t>(fn.num_locals)) {
          return make_error(StatusCode::kOutOfRange,
                            "local slot out of range " + at(fn, ip));
        }
        break;
      case OpCode::kJump:
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNotZero:
        if (instr.operand < 0 || instr.operand >= code_len) {
          return make_error(StatusCode::kOutOfRange,
                            "jump target out of range " + at(fn, ip));
        }
        break;
      case OpCode::kCall:
        if (instr.operand < 0 ||
            instr.operand >= static_cast<std::int64_t>(program.function_count())) {
          return make_error(StatusCode::kOutOfRange,
                            "call target out of range " + at(fn, ip));
        }
        break;
      case OpCode::kIntrinsic:
        if (instr.operand < 0 || instr.operand >= kNumIntrinsics) {
          return make_error(StatusCode::kOutOfRange,
                            "unknown intrinsic " + at(fn, ip));
        }
        break;
      default:
        break;
    }
  }
  return Status::ok();
}

// Flow-insensitive-in, flow-sensitive-out stack-depth analysis: propagates a
// single depth to each instruction and rejects merge-point disagreements.
// On success `depths_out` (when non-null) receives the depth before each
// instruction (-1 = unreachable).
Status verify_stack(const Program& program, const Function& fn,
                    const VerifyLimits& limits,
                    std::vector<int>* depths_out = nullptr) {
  if (fn.code.empty()) {
    return make_error(StatusCode::kInvalidArgument,
                      "function '" + fn.name + "' has empty code");
  }
  constexpr int kUnvisited = -1;
  std::vector<int> depth_at(fn.code.size(), kUnvisited);
  std::deque<std::size_t> worklist;
  depth_at[0] = 0;
  worklist.push_back(0);

  auto propagate = [&](std::size_t target, int depth, std::size_t from) -> Status {
    if (target >= fn.code.size()) {
      return make_error(StatusCode::kInvalidArgument,
                        "control falls off code end " + at(fn, from));
    }
    if (depth_at[target] == kUnvisited) {
      depth_at[target] = depth;
      worklist.push_back(target);
    } else if (depth_at[target] != depth) {
      return make_error(StatusCode::kInvalidArgument,
                        "inconsistent stack depth at merge " + at(fn, target));
    }
    return Status::ok();
  };

  while (!worklist.empty()) {
    const std::size_t ip = worklist.front();
    worklist.pop_front();
    const Instr& instr = fn.code[ip];
    int pops = 0, pushes = 0;
    TASKLETS_RETURN_IF_ERROR(stack_effect(program, fn, ip, pops, pushes));
    const int depth = depth_at[ip];
    if (depth < pops) {
      return make_error(StatusCode::kInvalidArgument,
                        "operand stack underflow " + at(fn, ip));
    }
    const int next = depth - pops + pushes;
    if (next > static_cast<int>(limits.max_stack_depth)) {
      return make_error(StatusCode::kResourceExhausted,
                        "static stack depth exceeds limit " + at(fn, ip));
    }
    switch (instr.op) {
      case OpCode::kReturn:
      case OpCode::kHalt:
        // `ret`/`halt` consume the result; nothing may be left beneath it.
        if (depth != 1) {
          return make_error(StatusCode::kInvalidArgument,
                            "non-singleton stack at return " + at(fn, ip));
        }
        break;
      case OpCode::kJump:
        TASKLETS_RETURN_IF_ERROR(
            propagate(static_cast<std::size_t>(instr.operand), next, ip));
        break;
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNotZero:
        TASKLETS_RETURN_IF_ERROR(
            propagate(static_cast<std::size_t>(instr.operand), next, ip));
        TASKLETS_RETURN_IF_ERROR(propagate(ip + 1, next, ip));
        break;
      default:
        TASKLETS_RETURN_IF_ERROR(propagate(ip + 1, next, ip));
        break;
    }
  }
  if (depths_out != nullptr) *depths_out = depth_at;
  return Status::ok();
}

// --- Fast-path plan construction ---------------------------------------------

// Abstract value tag for the quickening dataflow. kTop = unknown/any.
enum class Tag : std::uint8_t { kInt, kFloat, kArray, kTop };

Tag merge_tag(Tag a, Tag b) { return a == b ? a : Tag::kTop; }

struct AbsState {
  std::vector<Tag> stack;   // operand tags, bottom first
  std::vector<Tag> locals;  // local-slot tags

  // Pointwise merge; returns whether anything weakened.
  bool merge_from(const AbsState& other) {
    bool changed = false;
    for (std::size_t i = 0; i < stack.size(); ++i) {
      const Tag m = merge_tag(stack[i], other.stack[i]);
      if (m != stack[i]) {
        stack[i] = m;
        changed = true;
      }
    }
    for (std::size_t i = 0; i < locals.size(); ++i) {
      const Tag m = merge_tag(locals[i], other.locals[i]);
      if (m != locals[i]) {
        locals[i] = m;
        changed = true;
      }
    }
    return changed;
  }
};

// Applies one instruction's effect to the abstract state (success path; trap
// paths have no successors to feed). Sizes are guaranteed by the depth map.
void abs_apply(const Program& program, const Instr& instr, AbsState& s) {
  auto push = [&](Tag t) { s.stack.push_back(t); };
  auto pop = [&]() {
    const Tag t = s.stack.back();
    s.stack.pop_back();
    return t;
  };
  switch (instr.op) {
    case OpCode::kNop:
      break;
    case OpCode::kPushInt:
      push(Tag::kInt);
      break;
    case OpCode::kPushFloat:
      push(Tag::kFloat);
      break;
    case OpCode::kPop:
      pop();
      break;
    case OpCode::kDup:
      push(s.stack.back());
      break;
    case OpCode::kSwap:
      std::swap(s.stack[s.stack.size() - 1], s.stack[s.stack.size() - 2]);
      break;
    case OpCode::kLoadLocal:
      push(s.locals[static_cast<std::size_t>(instr.operand)]);
      break;
    case OpCode::kStoreLocal:
      s.locals[static_cast<std::size_t>(instr.operand)] = pop();
      break;
    case OpCode::kAddInt:
    case OpCode::kSubInt:
    case OpCode::kMulInt:
    case OpCode::kDivInt:
    case OpCode::kModInt:
    case OpCode::kBitAnd:
    case OpCode::kBitOr:
    case OpCode::kBitXor:
    case OpCode::kShl:
    case OpCode::kShr:
    case OpCode::kCmpEqInt:
    case OpCode::kCmpNeInt:
    case OpCode::kCmpLtInt:
    case OpCode::kCmpLeInt:
    case OpCode::kCmpGtInt:
    case OpCode::kCmpGeInt:
    case OpCode::kCmpEqFloat:
    case OpCode::kCmpNeFloat:
    case OpCode::kCmpLtFloat:
    case OpCode::kCmpLeFloat:
    case OpCode::kCmpGtFloat:
    case OpCode::kCmpGeFloat:
      pop();
      pop();
      push(Tag::kInt);
      break;
    case OpCode::kAddFloat:
    case OpCode::kSubFloat:
    case OpCode::kMulFloat:
    case OpCode::kDivFloat:
      pop();
      pop();
      push(Tag::kFloat);
      break;
    case OpCode::kNegInt:
    case OpCode::kLogicalNot:
    case OpCode::kFloatToInt:
      pop();
      push(Tag::kInt);
      break;
    case OpCode::kNegFloat:
    case OpCode::kIntToFloat:
      pop();
      push(Tag::kFloat);
      break;
    case OpCode::kJump:
      break;
    case OpCode::kJumpIfZero:
    case OpCode::kJumpIfNotZero:
      pop();
      break;
    case OpCode::kCall: {
      const auto& callee =
          program.function(static_cast<std::uint32_t>(instr.operand));
      for (std::uint32_t i = 0; i < callee.arity; ++i) pop();
      push(Tag::kTop);  // return values are not tracked across calls
      break;
    }
    case OpCode::kReturn:
    case OpCode::kHalt:
      break;  // terminal; no successors consume this state
    case OpCode::kNewArray:
      pop();
      push(Tag::kArray);
      break;
    case OpCode::kArrayLoad:
      pop();
      pop();
      push(Tag::kTop);  // element tags are not tracked
      break;
    case OpCode::kArrayStore:
      pop();
      pop();
      pop();
      break;
    case OpCode::kArrayLen:
      pop();
      push(Tag::kInt);
      break;
    case OpCode::kIntrinsic: {
      const IntrinsicInfo& info =
          intrinsic_info(static_cast<Intrinsic>(instr.operand));
      for (int i = 0; i < info.arity; ++i) pop();
      push(info.float_args ? Tag::kFloat : Tag::kInt);
      break;
    }
    default:
      break;  // quickened ops never appear in verified programs
  }
}

// Forward dataflow over operand/local tags; `in_out[ip]` receives the state
// before each reachable instruction.
void infer_tags(const Program& program, const Function& fn,
                std::vector<std::optional<AbsState>>& in_out) {
  in_out.assign(fn.code.size(), std::nullopt);
  AbsState entry;
  entry.locals.assign(fn.num_locals, Tag::kInt);  // zero-initialised slots
  for (std::uint32_t i = 0; i < fn.arity; ++i) {
    entry.locals[i] = Tag::kTop;  // caller-supplied, any tag
  }
  in_out[0] = entry;
  std::deque<std::size_t> worklist{0};
  auto flow = [&](std::size_t target, const AbsState& state) {
    if (!in_out[target].has_value()) {
      in_out[target] = state;
      worklist.push_back(target);
    } else if (in_out[target]->merge_from(state)) {
      worklist.push_back(target);
    }
  };
  while (!worklist.empty()) {
    const std::size_t ip = worklist.front();
    worklist.pop_front();
    const Instr& instr = fn.code[ip];
    AbsState out = *in_out[ip];
    abs_apply(program, instr, out);
    switch (instr.op) {
      case OpCode::kReturn:
      case OpCode::kHalt:
        break;
      case OpCode::kJump:
        flow(static_cast<std::size_t>(instr.operand), out);
        break;
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNotZero:
        flow(static_cast<std::size_t>(instr.operand), out);
        flow(ip + 1, out);
        break;
      default:
        flow(ip + 1, out);
        break;
    }
  }
}

// Rewrites one instruction to its unchecked form when the dataflow proved
// the consumed tags. Returns the original op when nothing is provable.
OpCode quicken_op(const Instr& instr, const AbsState& in) {
  auto top = [&](std::size_t k) {
    return in.stack[in.stack.size() - 1 - k];
  };
  auto bin_int = [&]() { return top(0) == Tag::kInt && top(1) == Tag::kInt; };
  auto bin_float = [&]() {
    return top(0) == Tag::kFloat && top(1) == Tag::kFloat;
  };
  switch (instr.op) {
    case OpCode::kAddInt: return bin_int() ? OpCode::kAddIntU : instr.op;
    case OpCode::kSubInt: return bin_int() ? OpCode::kSubIntU : instr.op;
    case OpCode::kMulInt: return bin_int() ? OpCode::kMulIntU : instr.op;
    case OpCode::kDivInt: return bin_int() ? OpCode::kDivIntU : instr.op;
    case OpCode::kModInt: return bin_int() ? OpCode::kModIntU : instr.op;
    case OpCode::kBitAnd: return bin_int() ? OpCode::kBitAndU : instr.op;
    case OpCode::kBitOr: return bin_int() ? OpCode::kBitOrU : instr.op;
    case OpCode::kBitXor: return bin_int() ? OpCode::kBitXorU : instr.op;
    case OpCode::kShl: return bin_int() ? OpCode::kShlU : instr.op;
    case OpCode::kShr: return bin_int() ? OpCode::kShrU : instr.op;
    case OpCode::kCmpEqInt: return bin_int() ? OpCode::kCmpEqIntU : instr.op;
    case OpCode::kCmpNeInt: return bin_int() ? OpCode::kCmpNeIntU : instr.op;
    case OpCode::kCmpLtInt: return bin_int() ? OpCode::kCmpLtIntU : instr.op;
    case OpCode::kCmpLeInt: return bin_int() ? OpCode::kCmpLeIntU : instr.op;
    case OpCode::kCmpGtInt: return bin_int() ? OpCode::kCmpGtIntU : instr.op;
    case OpCode::kCmpGeInt: return bin_int() ? OpCode::kCmpGeIntU : instr.op;
    case OpCode::kNegInt:
      return top(0) == Tag::kInt ? OpCode::kNegIntU : instr.op;
    case OpCode::kLogicalNot:
      return top(0) == Tag::kInt ? OpCode::kLogicalNotU : instr.op;
    case OpCode::kIntToFloat:
      return top(0) == Tag::kInt ? OpCode::kIntToFloatU : instr.op;
    case OpCode::kAddFloat: return bin_float() ? OpCode::kAddFloatU : instr.op;
    case OpCode::kSubFloat: return bin_float() ? OpCode::kSubFloatU : instr.op;
    case OpCode::kMulFloat: return bin_float() ? OpCode::kMulFloatU : instr.op;
    case OpCode::kDivFloat: return bin_float() ? OpCode::kDivFloatU : instr.op;
    case OpCode::kCmpEqFloat:
      return bin_float() ? OpCode::kCmpEqFloatU : instr.op;
    case OpCode::kCmpNeFloat:
      return bin_float() ? OpCode::kCmpNeFloatU : instr.op;
    case OpCode::kCmpLtFloat:
      return bin_float() ? OpCode::kCmpLtFloatU : instr.op;
    case OpCode::kCmpLeFloat:
      return bin_float() ? OpCode::kCmpLeFloatU : instr.op;
    case OpCode::kCmpGtFloat:
      return bin_float() ? OpCode::kCmpGtFloatU : instr.op;
    case OpCode::kCmpGeFloat:
      return bin_float() ? OpCode::kCmpGeFloatU : instr.op;
    case OpCode::kNegFloat:
      return top(0) == Tag::kFloat ? OpCode::kNegFloatU : instr.op;
    case OpCode::kFloatToInt:
      return top(0) == Tag::kFloat ? OpCode::kFloatToIntU : instr.op;
    case OpCode::kJumpIfZero:
      return top(0) == Tag::kInt ? OpCode::kJumpIfZeroU : instr.op;
    case OpCode::kJumpIfNotZero:
      return top(0) == Tag::kInt ? OpCode::kJumpIfNotZeroU : instr.op;
    case OpCode::kArrayLoad:
      return top(0) == Tag::kInt && top(1) == Tag::kArray ? OpCode::kArrayLoadU
                                                          : instr.op;
    case OpCode::kArrayStore:
      return top(1) == Tag::kInt && top(2) == Tag::kArray ? OpCode::kArrayStoreU
                                                          : instr.op;
    case OpCode::kArrayLen:
      return top(0) == Tag::kArray ? OpCode::kArrayLenU : instr.op;
    case OpCode::kIntrinsic: {
      const IntrinsicInfo& info =
          intrinsic_info(static_cast<Intrinsic>(instr.operand));
      const Tag want = info.float_args ? Tag::kFloat : Tag::kInt;
      for (int i = 0; i < info.arity; ++i) {
        if (top(static_cast<std::size_t>(i)) != want) return instr.op;
      }
      return OpCode::kIntrinsicU;
    }
    default:
      return instr.op;
  }
}

std::int64_t pack_slots(std::int64_t lo, std::int64_t hi) {
  return lo | (hi << 32);
}

// Pairs `push_i k` / `push_f x` with a following unchecked binop into an
// immediate form. Returns kNop when the pair is not fusable.
OpCode imm_fused_op(OpCode push_op, OpCode next) {
  if (push_op == OpCode::kPushInt) {
    switch (next) {
      case OpCode::kAddIntU: return OpCode::kAddIntImmU;
      case OpCode::kSubIntU: return OpCode::kSubIntImmU;
      case OpCode::kMulIntU: return OpCode::kMulIntImmU;
      case OpCode::kCmpEqIntU: return OpCode::kCmpEqIntImmU;
      case OpCode::kCmpNeIntU: return OpCode::kCmpNeIntImmU;
      case OpCode::kCmpLtIntU: return OpCode::kCmpLtIntImmU;
      case OpCode::kCmpLeIntU: return OpCode::kCmpLeIntImmU;
      case OpCode::kCmpGtIntU: return OpCode::kCmpGtIntImmU;
      case OpCode::kCmpGeIntU: return OpCode::kCmpGeIntImmU;
      default: return OpCode::kNop;
    }
  }
  switch (next) {
    case OpCode::kAddFloatU: return OpCode::kAddFloatImmU;
    case OpCode::kSubFloatU: return OpCode::kSubFloatImmU;
    case OpCode::kMulFloatU: return OpCode::kMulFloatImmU;
    case OpCode::kDivFloatU: return OpCode::kDivFloatImmU;
    case OpCode::kCmpEqFloatU: return OpCode::kCmpEqFloatImmU;
    case OpCode::kCmpNeFloatU: return OpCode::kCmpNeFloatImmU;
    case OpCode::kCmpLtFloatU: return OpCode::kCmpLtFloatImmU;
    case OpCode::kCmpLeFloatU: return OpCode::kCmpLeFloatImmU;
    case OpCode::kCmpGtFloatU: return OpCode::kCmpGtFloatImmU;
    case OpCode::kCmpGeFloatU: return OpCode::kCmpGeFloatImmU;
    default: return OpCode::kNop;
  }
}

// Fuses short windows inside a basic block. Safe because fused windows lie
// within one block (no branch lands mid-window) and the fast engine enters
// code mid-block only through the checked stepper, which runs the original
// (unfused) instructions.
void fuse(const Function& fn, FunctionPlan& plan) {
  auto& quick = plan.quick;
  auto same_block = [&](std::size_t a, std::size_t b) {
    return plan.block_of[a] != kNoBlock && plan.block_of[a] == plan.block_of[b];
  };
  std::size_t ip = 0;
  while (ip < quick.size()) {
    // `load ref; load idx; aload` -> one fused array read.
    auto aload_triple_at = [&](std::size_t p) {
      return p + 2 < quick.size() && fn.code[p].op == OpCode::kLoadLocal &&
             fn.code[p + 1].op == OpCode::kLoadLocal &&
             (quick[p + 2].op == OpCode::kArrayLoadU ||
              quick[p + 2].op == OpCode::kArrayLoad) &&
             same_block(p, p + 2);
    };
    if (aload_triple_at(ip)) {
      const OpCode fused = quick[ip + 2].op == OpCode::kArrayLoadU
                               ? OpCode::kArrayLoadLLU
                               : OpCode::kArrayLoadLLC;
      quick[ip] = Instr{fused, pack_slots(fn.code[ip].operand,
                                          fn.code[ip + 1].operand)};
      ip += 3;
      continue;
    }
    if (ip + 1 < quick.size() && same_block(ip, ip + 1)) {
      // `push k; <unchecked binop>` -> immediate form.
      if (fn.code[ip].op == OpCode::kPushInt ||
          fn.code[ip].op == OpCode::kPushFloat) {
        const OpCode fused = imm_fused_op(fn.code[ip].op, quick[ip + 1].op);
        if (fused != OpCode::kNop) {
          quick[ip] = Instr{fused, fn.code[ip].operand};
          ip += 2;
          continue;
        }
      }
      // `load x; load y` -> paired load, unless the second load starts an
      // aload triple (the triple fusion saves more).
      if (fn.code[ip].op == OpCode::kLoadLocal &&
          fn.code[ip + 1].op == OpCode::kLoadLocal &&
          !aload_triple_at(ip + 1)) {
        quick[ip] = Instr{OpCode::kLoadLocal2,
                          pack_slots(fn.code[ip].operand,
                                     fn.code[ip + 1].operand)};
        ip += 2;
        continue;
      }
    }
    ++ip;
  }
}

Result<FunctionPlan> plan_function(const Program& program, const Function& fn,
                                   const VerifyLimits& limits) {
  TASKLETS_RETURN_IF_ERROR(verify_operands(program, fn));
  std::vector<int> depths;
  TASKLETS_RETURN_IF_ERROR(verify_stack(program, fn, limits, &depths));

  FunctionPlan plan;
  plan.quick = fn.code;
  plan.block_of.assign(fn.code.size(), kNoBlock);

  // Leaders: entry, branch targets, and successors of control transfers
  // (kCall ends a block because the machine leaves the frame).
  std::vector<bool> leader(fn.code.size(), false);
  leader[0] = true;
  for (std::size_t ip = 0; ip < fn.code.size(); ++ip) {
    switch (fn.code[ip].op) {
      case OpCode::kJump:
      case OpCode::kJumpIfZero:
      case OpCode::kJumpIfNotZero:
        leader[static_cast<std::size_t>(fn.code[ip].operand)] = true;
        [[fallthrough]];
      case OpCode::kCall:
      case OpCode::kReturn:
      case OpCode::kHalt:
        if (ip + 1 < fn.code.size()) leader[ip + 1] = true;
        break;
      default:
        break;
    }
  }

  // Blocks over reachable leaders. Reachability is uniform within a block:
  // mid-block instructions are reached only by fallthrough from their
  // leader (branches target leaders by construction).
  for (std::size_t begin = 0; begin < fn.code.size();) {
    std::size_t end = begin + 1;
    while (end < fn.code.size() && !leader[end]) ++end;
    if (depths[begin] >= 0) {
      BlockInfo info;
      info.begin = static_cast<std::uint32_t>(begin);
      info.end = static_cast<std::uint32_t>(end);
      const int entry_depth = depths[begin];
      int max_rel = 0;
      for (std::size_t ip = begin; ip < end; ++ip) {
        const Instr& instr = fn.code[ip];
        info.base_fuel += 1;
        if (instr.op == OpCode::kCall) info.base_fuel += 3;
        if (instr.op == OpCode::kIntrinsic) info.base_fuel += 4;
        if (instr.op == OpCode::kNewArray) info.variable_fuel = true;
        max_rel = std::max(max_rel, depths[ip] - entry_depth);
        plan.block_of[ip] = static_cast<std::uint32_t>(plan.blocks.size());
      }
      // Depth after the terminator also bounds the reserve the fast engine
      // needs (e.g. a trailing push).
      {
        int pops = 0, pushes = 0;
        TASKLETS_RETURN_IF_ERROR(
            stack_effect(program, fn, end - 1, pops, pushes));
        max_rel = std::max(max_rel,
                           depths[end - 1] - pops + pushes - entry_depth);
      }
      info.max_depth = static_cast<std::uint32_t>(max_rel);
      plan.blocks.push_back(info);
    }
    begin = end;
  }

  // Quickening: rewrite ops whose consumed tags the dataflow proves, then
  // fuse windows.
  std::vector<std::optional<AbsState>> states;
  infer_tags(program, fn, states);
  for (std::size_t ip = 0; ip < fn.code.size(); ++ip) {
    if (!states[ip].has_value()) continue;
    plan.quick[ip].op = quicken_op(fn.code[ip], *states[ip]);
  }
  fuse(fn, plan);
  return plan;
}

}  // namespace

Status verify(const Program& program, const VerifyLimits& limits) {
  if (program.function_count() == 0) {
    return make_error(StatusCode::kInvalidArgument, "program has no functions");
  }
  if (program.entry() >= program.function_count()) {
    return make_error(StatusCode::kOutOfRange, "entry index out of range");
  }
  for (const auto& fn : program.functions()) {
    if (fn.arity > fn.num_locals) {
      return make_error(StatusCode::kInvalidArgument,
                        "arity exceeds locals in '" + fn.name + "'");
    }
    TASKLETS_RETURN_IF_ERROR(verify_operands(program, fn));
    TASKLETS_RETURN_IF_ERROR(verify_stack(program, fn, limits));
  }
  return Status::ok();
}

Result<ExecPlan> analyze(const Program& program, const VerifyLimits& limits) {
  if (program.function_count() == 0) {
    return make_error(StatusCode::kInvalidArgument, "program has no functions");
  }
  if (program.entry() >= program.function_count()) {
    return make_error(StatusCode::kOutOfRange, "entry index out of range");
  }
  ExecPlan plan;
  plan.functions.reserve(program.function_count());
  for (const auto& fn : program.functions()) {
    if (fn.arity > fn.num_locals) {
      return make_error(StatusCode::kInvalidArgument,
                        "arity exceeds locals in '" + fn.name + "'");
    }
    TASKLETS_ASSIGN_OR_RETURN(auto fn_plan, plan_function(program, fn, limits));
    plan.functions.push_back(std::move(fn_plan));
  }
  return plan;
}

Result<std::vector<std::vector<int>>> stack_depth_map(const Program& program,
                                                      const VerifyLimits& limits) {
  if (program.function_count() == 0) {
    return make_error(StatusCode::kInvalidArgument, "program has no functions");
  }
  if (program.entry() >= program.function_count()) {
    return make_error(StatusCode::kOutOfRange, "entry index out of range");
  }
  std::vector<std::vector<int>> map;
  map.reserve(program.function_count());
  for (const auto& fn : program.functions()) {
    if (fn.arity > fn.num_locals) {
      return make_error(StatusCode::kInvalidArgument,
                        "arity exceeds locals in '" + fn.name + "'");
    }
    TASKLETS_RETURN_IF_ERROR(verify_operands(program, fn));
    std::vector<int> depths;
    TASKLETS_RETURN_IF_ERROR(verify_stack(program, fn, limits, &depths));
    map.push_back(std::move(depths));
  }
  return map;
}

}  // namespace tasklets::tvm

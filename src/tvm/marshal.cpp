#include "tvm/marshal.hpp"

#include <sstream>

namespace tasklets::tvm {

namespace {
enum class ArgTag : std::uint8_t {
  kInt = 0,
  kFloat = 1,
  kIntArray = 2,
  kFloatArray = 3,
};
constexpr std::uint64_t kMaxArrayLen = 1u << 26;  // 64M elements
constexpr std::uint64_t kMaxArgs = 1u << 16;
}  // namespace

std::string to_string(const HostArg& arg) {
  std::ostringstream out;
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::int64_t> || std::is_same_v<T, double>) {
          out << v;
        } else {
          out << '[';
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) out << ", ";
            if (i >= 8) {
              out << "... " << v.size() << " elements";
              break;
            }
            out << v[i];
          }
          out << ']';
        }
      },
      arg);
  return out.str();
}

void encode_arg(ByteWriter& w, const HostArg& arg) {
  std::visit(
      [&](const auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          w.write_u8(static_cast<std::uint8_t>(ArgTag::kInt));
          w.write_varint_signed(v);
        } else if constexpr (std::is_same_v<T, double>) {
          w.write_u8(static_cast<std::uint8_t>(ArgTag::kFloat));
          w.write_f64(v);
        } else if constexpr (std::is_same_v<T, std::vector<std::int64_t>>) {
          w.write_u8(static_cast<std::uint8_t>(ArgTag::kIntArray));
          w.write_varint(v.size());
          for (auto x : v) w.write_varint_signed(x);
        } else {
          w.write_u8(static_cast<std::uint8_t>(ArgTag::kFloatArray));
          w.write_varint(v.size());
          for (auto x : v) w.write_f64(x);
        }
      },
      arg);
}

// GCC 12's flow analysis loses track of the variant alternative when the
// vector branches below are inlined into Result<HostArg>'s move path and
// reports the *inactive* alternative's vector members as maybe-uninitialized
// (visible at -O2 and under -fsanitize). False positive; silence it locally
// so -Werror builds (Release, sanitizer CI) stay clean.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Result<HostArg> decode_arg(ByteReader& r) {
  TASKLETS_ASSIGN_OR_RETURN(auto tag, r.read_u8());
  switch (static_cast<ArgTag>(tag)) {
    case ArgTag::kInt: {
      TASKLETS_ASSIGN_OR_RETURN(auto v, r.read_varint_signed());
      return HostArg{v};
    }
    case ArgTag::kFloat: {
      TASKLETS_ASSIGN_OR_RETURN(auto v, r.read_f64());
      return HostArg{v};
    }
    case ArgTag::kIntArray: {
      TASKLETS_ASSIGN_OR_RETURN(auto n, r.read_varint());
      if (n > kMaxArrayLen) {
        return make_error(StatusCode::kDataLoss, "array too long");
      }
      std::vector<std::int64_t> v;
      v.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        TASKLETS_ASSIGN_OR_RETURN(auto x, r.read_varint_signed());
        v.push_back(x);
      }
      return HostArg{std::move(v)};
    }
    case ArgTag::kFloatArray: {
      TASKLETS_ASSIGN_OR_RETURN(auto n, r.read_varint());
      if (n > kMaxArrayLen) {
        return make_error(StatusCode::kDataLoss, "array too long");
      }
      std::vector<double> v;
      v.reserve(n);
      for (std::uint64_t i = 0; i < n; ++i) {
        TASKLETS_ASSIGN_OR_RETURN(auto x, r.read_f64());
        v.push_back(x);
      }
      return HostArg{std::move(v)};
    }
  }
  return make_error(StatusCode::kDataLoss, "unknown argument tag");
}

void encode_args(ByteWriter& w, const std::vector<HostArg>& args) {
  w.write_varint(args.size());
  for (const auto& a : args) encode_arg(w, a);
}

// decode_args inlines decode_arg at -O3, which re-surfaces the same false
// positive there; keep it inside the suppression region.
Result<std::vector<HostArg>> decode_args(ByteReader& r) {
  TASKLETS_ASSIGN_OR_RETURN(auto n, r.read_varint());
  if (n > kMaxArgs) {
    return make_error(StatusCode::kDataLoss, "too many arguments");
  }
  std::vector<HostArg> args;
  args.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto a, decode_arg(r));
    args.push_back(std::move(a));
  }
  return args;
}
#pragma GCC diagnostic pop

bool args_equal(const HostArg& a, const HostArg& b) noexcept {
  return a == b;  // variant + vector equality is exact, element-wise
}

std::size_t arg_wire_size(const HostArg& arg) noexcept {
  return std::visit(
      [](const auto& v) -> std::size_t {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::int64_t> || std::is_same_v<T, double>) {
          return 9;
        } else {
          return 2 + v.size() * 8;
        }
      },
      arg);
}

}  // namespace tasklets::tvm

#include "tvm/interpreter.hpp"

#include <bit>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>

#include "common/bytes.hpp"
#include "tvm/value.hpp"
#include "tvm/verifier.hpp"

// Computed-goto dispatch needs the GNU address-of-label extension; fall back
// to the switch-based fast loop elsewhere even when the option is set.
#if defined(TASKLETS_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define TASKLETS_COMPUTED_GOTO 1
#else
#define TASKLETS_COMPUTED_GOTO 0
#endif

namespace tasklets::tvm {

namespace {

struct Frame {
  const Function* fn = nullptr;
  std::uint32_t fn_idx = 0;  // index of `fn` in the program
  std::size_t ip = 0;
  std::size_t locals_base = 0;
};

// Raw-buffer operand stack. The fast-path engine runs a proven basic block
// through a bare Value* cursor with no per-push checks (capacity is
// reserved from the block's proven max depth at block entry); std::vector
// cannot legally be written past size(), so the buffer is managed directly.
class OperandStack {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] Value* data() noexcept { return data_.get(); }
  [[nodiscard]] const Value* begin() const noexcept { return data_.get(); }
  [[nodiscard]] const Value* end() const noexcept { return data_.get() + size_; }
  [[nodiscard]] Value& back() noexcept { return data_[size_ - 1]; }

  void reserve(std::size_t cap) {
    if (cap > cap_) grow(cap);
  }
  void push_back(Value v) {
    if (size_ == cap_) grow(size_ + 1);
    data_[size_++] = v;
  }
  void pop_back() noexcept { --size_; }
  void clear() noexcept { size_ = 0; }
  // Publishes the cursor position after a fast-path block ran over data().
  void set_size(std::size_t n) noexcept { size_ = n; }

 private:
  void grow(std::size_t need) {
    std::size_t cap = cap_ == 0 ? 256 : cap_;
    while (cap < need) cap *= 2;
    auto next = std::make_unique<Value[]>(cap);
    std::copy(data_.get(), data_.get() + size_, next.get());
    data_ = std::move(next);
    cap_ = cap;
  }

  std::unique_ptr<Value[]> data_;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

// Intrinsic kernels shared by both engines (tag checks are the caller's
// job). Returns false on an id/table mismatch, which the callers surface as
// the reference stepper's "intrinsic dispatch mismatch" internal trap.
bool eval_intrinsic_float(Intrinsic id, double x, double y, double& r) {
  switch (id) {
    case Intrinsic::kSqrt: r = std::sqrt(x); return true;
    case Intrinsic::kSin: r = std::sin(x); return true;
    case Intrinsic::kCos: r = std::cos(x); return true;
    case Intrinsic::kTan: r = std::tan(x); return true;
    case Intrinsic::kExp: r = std::exp(x); return true;
    case Intrinsic::kLog: r = std::log(x); return true;
    case Intrinsic::kFloor: r = std::floor(x); return true;
    case Intrinsic::kCeil: r = std::ceil(x); return true;
    case Intrinsic::kRound: r = std::round(x); return true;
    case Intrinsic::kAbsFloat: r = std::fabs(x); return true;
    case Intrinsic::kPow: r = std::pow(x, y); return true;
    case Intrinsic::kAtan2: r = std::atan2(x, y); return true;
    case Intrinsic::kMinFloat: r = std::fmin(x, y); return true;
    case Intrinsic::kMaxFloat: r = std::fmax(x, y); return true;
    default: return false;
  }
}

bool eval_intrinsic_int(Intrinsic id, std::int64_t x, std::int64_t y,
                        std::int64_t& r) {
  switch (id) {
    case Intrinsic::kAbsInt:
      r = x < 0 ? static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(x)) : x;
      return true;
    case Intrinsic::kMinInt: r = std::min(x, y); return true;
    case Intrinsic::kMaxInt: r = std::max(x, y); return true;
    default: return false;
  }
}

class Machine {
 public:
  Machine(const Program& program, const ExecLimits& limits)
      : program_(program), limits_(limits) {}

  Result<ExecOutcome> run(const std::vector<HostArg>& args);

  // Resumable execution (see interpreter.hpp).
  Status start(const std::vector<HostArg>& args);
  Status restore(std::span<const std::byte> snapshot);
  Result<SliceOutcome> run_slice(std::uint64_t fuel_slice);

  void set_profile(ExecProfile* profile) noexcept { profile_ = profile; }
  // Seeds the retired-instruction counter when resuming from a Suspension
  // whose in-memory count survived (same-host slicing).
  void set_instructions(std::uint64_t n) noexcept { instructions_ = n; }
  // Enables the fast-path engine; `plan` must outlive the machine. Null (or
  // a kReference engine, or profiling) keeps the reference stepper.
  void set_plan(const ExecPlan* plan) noexcept { plan_ = plan; }
  void set_engine(Engine engine) noexcept { engine_ = engine; }

 private:
  [[nodiscard]] Bytes snapshot() const;
  // --- error helpers -------------------------------------------------------
  Status trap(StatusCode code, std::string what) const {
    const Frame& f = frames_.back();
    return make_error(code, std::move(what) + " in '" + f.fn->name +
                                "' at instruction " + std::to_string(f.ip - 1));
  }

  // --- stack helpers (verifier guarantees no underflow) --------------------
  void push(Value v) { stack_.push_back(v); }
  Value pop() {
    Value v = stack_.back();
    stack_.pop_back();
    return v;
  }
  Value& top() { return stack_.back(); }

  Status pop_int(std::int64_t& out) {
    const Value v = pop();
    if (!v.is_int()) {
      return trap(StatusCode::kAborted,
                  std::string("expected int, got ") + std::string(to_string(v.tag())));
    }
    out = v.as_int();
    return Status::ok();
  }
  Status pop_float(double& out) {
    const Value v = pop();
    if (!v.is_float()) {
      return trap(StatusCode::kAborted,
                  std::string("expected float, got ") + std::string(to_string(v.tag())));
    }
    out = v.as_float();
    return Status::ok();
  }
  Status pop_array(ArrayHandle& out) {
    const Value v = pop();
    if (!v.is_array()) {
      return trap(StatusCode::kAborted,
                  std::string("expected array, got ") + std::string(to_string(v.tag())));
    }
    out = v.as_array();
    return Status::ok();
  }

  // --- heap ----------------------------------------------------------------
  Result<ArrayHandle> alloc_array(std::int64_t length) {
    if (length < 0) {
      return trap(StatusCode::kAborted, "negative array length");
    }
    const auto cells = static_cast<std::uint64_t>(length);
    if (heap_cells_ + cells > limits_.max_heap_cells) {
      return trap(StatusCode::kResourceExhausted, "heap limit exceeded");
    }
    heap_cells_ += cells;
    heap_.emplace_back(static_cast<std::size_t>(length), Value::from_int(0));
    return static_cast<ArrayHandle>(heap_.size() - 1);
  }

  // --- frames ----------------------------------------------------------------
  Status enter(std::uint32_t fn_idx, bool from_host,
               const std::vector<HostArg>* host_args);
  Status do_return();

  // --- marshalling -----------------------------------------------------------
  Result<Value> host_to_value(const HostArg& arg);
  Result<HostArg> value_to_host(Value v) const;

  Status step();  // executes one instruction
  // Profiled interpreter loop: step() plus per-opcode timing into profile_,
  // until halt/trap or fuel_used_ >= `target` at an instruction boundary
  // (sets `suspended`). Kept out of step() so the unprofiled path carries no
  // clock reads; kept a loop (not a profiled step called from the generic
  // run loop) so the inter-read window stays a handful of instructions —
  // see the definition for the skew bound.
  Status run_profiled(std::uint64_t target, bool& suspended);

  // The fast-path engine is usable when a plan is attached and nothing
  // forces per-instruction observation.
  [[nodiscard]] bool fast_enabled() const noexcept {
    return plan_ != nullptr && profile_ == nullptr && engine_ == Engine::kFast;
  }
  // Runs fast-path blocks until halt, trap, or fuel_used_ >= `target` at an
  // instruction boundary (sets `suspended` in the latter case).
  Status run_fast(std::uint64_t target, bool& suspended);

  const Program& program_;
  const ExecLimits& limits_;
  OperandStack stack_;
  std::vector<Value> locals_;
  std::vector<Frame> frames_;
  std::vector<std::vector<Value>> heap_;
  std::uint64_t heap_cells_ = 0;
  std::uint64_t fuel_used_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint32_t peak_depth_ = 0;
  bool halted_ = false;
  ExecProfile* profile_ = nullptr;
  const ExecPlan* plan_ = nullptr;
  Engine engine_ = Engine::kFast;
};

Status Machine::enter(std::uint32_t fn_idx, bool from_host,
                      const std::vector<HostArg>* host_args) {
  const Function& fn = program_.function(fn_idx);
  if (frames_.size() >= limits_.max_call_depth) {
    return make_error(StatusCode::kResourceExhausted,
                      "call depth limit exceeded entering '" + fn.name + "'");
  }
  Frame frame;
  frame.fn = &fn;
  frame.fn_idx = fn_idx;
  frame.ip = 0;
  frame.locals_base = locals_.size();
  locals_.resize(locals_.size() + fn.num_locals, Value::from_int(0));
  if (from_host) {
    if (host_args->size() != fn.arity) {
      return make_error(StatusCode::kInvalidArgument,
                        "entry '" + fn.name + "' expects " +
                            std::to_string(fn.arity) + " args, got " +
                            std::to_string(host_args->size()));
    }
    for (std::uint32_t i = 0; i < fn.arity; ++i) {
      TASKLETS_ASSIGN_OR_RETURN(auto v, host_to_value((*host_args)[i]));
      locals_[frame.locals_base + i] = v;
    }
  } else {
    // Arguments were pushed left-to-right, so the last argument is on top.
    for (std::uint32_t i = fn.arity; i-- > 0;) {
      locals_[frame.locals_base + i] = pop();
    }
  }
  frames_.push_back(frame);
  peak_depth_ = std::max(peak_depth_, static_cast<std::uint32_t>(frames_.size()));
  return Status::ok();
}

Status Machine::do_return() {
  const Frame frame = frames_.back();
  frames_.pop_back();
  locals_.resize(frame.locals_base);
  // Result value stays on the operand stack for the caller (or the host).
  if (frames_.empty()) halted_ = true;
  return Status::ok();
}

Result<Value> Machine::host_to_value(const HostArg& arg) {
  if (const auto* i = std::get_if<std::int64_t>(&arg)) {
    return Value::from_int(*i);
  }
  if (const auto* f = std::get_if<double>(&arg)) {
    return Value::from_float(*f);
  }
  if (const auto* iv = std::get_if<std::vector<std::int64_t>>(&arg)) {
    TASKLETS_ASSIGN_OR_RETURN(
        auto h, alloc_array(static_cast<std::int64_t>(iv->size())));
    auto& cells = heap_[h];
    for (std::size_t i = 0; i < iv->size(); ++i) {
      cells[i] = Value::from_int((*iv)[i]);
    }
    return Value::from_array(h);
  }
  const auto& fv = std::get<std::vector<double>>(arg);
  TASKLETS_ASSIGN_OR_RETURN(auto h,
                            alloc_array(static_cast<std::int64_t>(fv.size())));
  auto& cells = heap_[h];
  for (std::size_t i = 0; i < fv.size(); ++i) {
    cells[i] = Value::from_float(fv[i]);
  }
  return Value::from_array(h);
}

// GCC 12 flow analysis loses track of the variant alternative when the
// vector branches are inlined into Result<HostArg>'s move path and flags the
// inactive alternative's vector members as maybe-uninitialized (at -O2 and
// under -fsanitize). False positive; silenced locally for -Werror builds.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Result<HostArg> Machine::value_to_host(Value v) const {
  switch (v.tag()) {
    case ValueTag::kInt:
      return HostArg{v.as_int()};
    case ValueTag::kFloat:
      return HostArg{v.as_float()};
    case ValueTag::kArray: {
      const auto& cells = heap_[v.as_array()];
      // Classify: all-int -> int array, otherwise all elements must be
      // numeric and are widened to double. Nested arrays cannot cross the
      // host boundary.
      bool all_int = true;
      for (const Value& c : cells) {
        if (c.is_array()) {
          return make_error(StatusCode::kAborted,
                            "nested array cannot be returned to host");
        }
        if (!c.is_int()) all_int = false;
      }
      if (all_int) {
        std::vector<std::int64_t> out;
        out.reserve(cells.size());
        for (const Value& c : cells) out.push_back(c.as_int());
        return HostArg{std::move(out)};
      }
      std::vector<double> out;
      out.reserve(cells.size());
      for (const Value& c : cells) out.push_back(c.to_double());
      return HostArg{std::move(out)};
    }
  }
  return make_error(StatusCode::kInternal, "corrupt value tag");
}
#pragma GCC diagnostic pop

// One steady_clock read per instruction: the previous step's end timestamp
// is this step's begin (only the first step pays two reads). Batching has a
// cost: everything between two reads that is not step() itself — the bucket
// update, the halt/target checks and the next opcode fetch — is billed to
// the *next* opcode's window. This loop exists to bound that residual: the
// inter-read code is ~10 straight-line instructions with no allocation,
// branch misprediction aside, versus the previous shape (a profiled step()
// driven from the generic run loop) which also billed a Status-object
// round trip and a profiling dispatch branch per step. The residual bound
// is documented in docs/OBSERVABILITY.md; it cannot reach zero without a
// second clock read per instruction, which would double the probe cost.
Status Machine::run_profiled(std::uint64_t target, bool& suspended) {
  auto mark = std::chrono::steady_clock::now();
  while (!halted_) {
    if (fuel_used_ >= target) {
      suspended = true;
      return Status::ok();
    }
    const OpCode op = frames_.back().fn->code[frames_.back().ip].op;
    const Status status = step();
    const auto end = std::chrono::steady_clock::now();
    ExecProfile::OpEntry& entry = profile_->ops[static_cast<std::size_t>(op)];
    ++entry.count;
    entry.nanos += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - mark)
            .count());
    mark = end;
    ++profile_->instructions;
    if (!status.is_ok()) return status;
  }
  return Status::ok();
}

Status Machine::step() {
  Frame& frame = frames_.back();
  const Instr instr = frame.fn->code[frame.ip++];

  ++instructions_;
  ++fuel_used_;
  if (fuel_used_ > limits_.max_fuel) {
    return trap(StatusCode::kDeadlineExceeded, "fuel exhausted");
  }
  if (stack_.size() >= limits_.max_operand_stack) {
    return trap(StatusCode::kResourceExhausted, "operand stack limit");
  }

  switch (instr.op) {
    case OpCode::kNop:
      break;
    case OpCode::kPushInt:
      push(Value::from_int(instr.operand));
      break;
    case OpCode::kPushFloat:
      push(Value::from_float(
          std::bit_cast<double>(static_cast<std::uint64_t>(instr.operand))));
      break;
    case OpCode::kPop:
      pop();
      break;
    case OpCode::kDup:
      push(top());
      break;
    case OpCode::kSwap: {
      Value b = pop();
      Value a = pop();
      push(b);
      push(a);
      break;
    }
    case OpCode::kLoadLocal:
      push(locals_[frame.locals_base + static_cast<std::size_t>(instr.operand)]);
      break;
    case OpCode::kStoreLocal:
      locals_[frame.locals_base + static_cast<std::size_t>(instr.operand)] = pop();
      break;

#define TASKLETS_BIN_INT(name, expr)                 \
  case OpCode::name: {                               \
    std::int64_t b, a;                               \
    TASKLETS_RETURN_IF_ERROR(pop_int(b));            \
    TASKLETS_RETURN_IF_ERROR(pop_int(a));            \
    push(Value::from_int(expr));                     \
    break;                                           \
  }

    TASKLETS_BIN_INT(kAddInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b)))
    TASKLETS_BIN_INT(kSubInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b)))
    TASKLETS_BIN_INT(kMulInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)))
    TASKLETS_BIN_INT(kBitAnd, a & b)
    TASKLETS_BIN_INT(kBitOr, a | b)
    TASKLETS_BIN_INT(kBitXor, a ^ b)
    TASKLETS_BIN_INT(kShl, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63)))
    TASKLETS_BIN_INT(kShr, a >> (static_cast<std::uint64_t>(b) & 63))
    TASKLETS_BIN_INT(kCmpEqInt, a == b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpNeInt, a != b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpLtInt, a < b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpLeInt, a <= b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpGtInt, a > b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpGeInt, a >= b ? 1 : 0)
#undef TASKLETS_BIN_INT

    case OpCode::kDivInt: {
      std::int64_t b, a;
      TASKLETS_RETURN_IF_ERROR(pop_int(b));
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      if (b == 0) return trap(StatusCode::kAborted, "integer division by zero");
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
        return trap(StatusCode::kAborted, "integer division overflow");
      }
      push(Value::from_int(a / b));
      break;
    }
    case OpCode::kModInt: {
      std::int64_t b, a;
      TASKLETS_RETURN_IF_ERROR(pop_int(b));
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      if (b == 0) return trap(StatusCode::kAborted, "integer modulo by zero");
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
        push(Value::from_int(0));
      } else {
        push(Value::from_int(a % b));
      }
      break;
    }
    case OpCode::kNegInt: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      push(Value::from_int(static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a))));
      break;
    }

#define TASKLETS_BIN_FLOAT(name, expr)               \
  case OpCode::name: {                               \
    double b, a;                                     \
    TASKLETS_RETURN_IF_ERROR(pop_float(b));          \
    TASKLETS_RETURN_IF_ERROR(pop_float(a));          \
    push(expr);                                      \
    break;                                           \
  }

    TASKLETS_BIN_FLOAT(kAddFloat, Value::from_float(a + b))
    TASKLETS_BIN_FLOAT(kSubFloat, Value::from_float(a - b))
    TASKLETS_BIN_FLOAT(kMulFloat, Value::from_float(a * b))
    TASKLETS_BIN_FLOAT(kDivFloat, Value::from_float(a / b))
    TASKLETS_BIN_FLOAT(kCmpEqFloat, Value::from_int(a == b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpNeFloat, Value::from_int(a != b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpLtFloat, Value::from_int(a < b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpLeFloat, Value::from_int(a <= b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpGtFloat, Value::from_int(a > b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpGeFloat, Value::from_int(a >= b ? 1 : 0))
#undef TASKLETS_BIN_FLOAT

    case OpCode::kNegFloat: {
      double a;
      TASKLETS_RETURN_IF_ERROR(pop_float(a));
      push(Value::from_float(-a));
      break;
    }
    case OpCode::kLogicalNot: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      push(Value::from_int(a == 0 ? 1 : 0));
      break;
    }
    case OpCode::kIntToFloat: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      push(Value::from_float(static_cast<double>(a)));
      break;
    }
    case OpCode::kFloatToInt: {
      double a;
      TASKLETS_RETURN_IF_ERROR(pop_float(a));
      if (std::isnan(a) || a < -9.223372036854776e18 || a >= 9.223372036854776e18) {
        return trap(StatusCode::kAborted, "float to int out of range");
      }
      push(Value::from_int(static_cast<std::int64_t>(a)));
      break;
    }

    case OpCode::kJump:
      frame.ip = static_cast<std::size_t>(instr.operand);
      break;
    case OpCode::kJumpIfZero: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      if (a == 0) frame.ip = static_cast<std::size_t>(instr.operand);
      break;
    }
    case OpCode::kJumpIfNotZero: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      if (a != 0) frame.ip = static_cast<std::size_t>(instr.operand);
      break;
    }

    case OpCode::kCall:
      // Calls cost extra fuel: frame setup dominates a single opcode.
      fuel_used_ += 3;
      return enter(static_cast<std::uint32_t>(instr.operand),
                   /*from_host=*/false, nullptr);
    case OpCode::kReturn:
      return do_return();
    case OpCode::kHalt:
      // Stops the whole machine (even inside a nested call); the value on
      // top of the stack becomes the program result.
      halted_ = true;
      break;

    case OpCode::kNewArray: {
      std::int64_t len;
      TASKLETS_RETURN_IF_ERROR(pop_int(len));
      // Zero-filling large arrays is real work; charge proportionally.
      fuel_used_ += static_cast<std::uint64_t>(len < 0 ? 0 : len) / 4;
      TASKLETS_ASSIGN_OR_RETURN(auto h, alloc_array(len));
      push(Value::from_array(h));
      break;
    }
    case OpCode::kArrayLoad: {
      std::int64_t idx;
      ArrayHandle h;
      TASKLETS_RETURN_IF_ERROR(pop_int(idx));
      TASKLETS_RETURN_IF_ERROR(pop_array(h));
      const auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return trap(StatusCode::kAborted, "array index out of bounds");
      }
      push(cells[static_cast<std::size_t>(idx)]);
      break;
    }
    case OpCode::kArrayStore: {
      const Value value = pop();
      std::int64_t idx;
      ArrayHandle h;
      TASKLETS_RETURN_IF_ERROR(pop_int(idx));
      TASKLETS_RETURN_IF_ERROR(pop_array(h));
      auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return trap(StatusCode::kAborted, "array index out of bounds");
      }
      cells[static_cast<std::size_t>(idx)] = value;
      break;
    }
    case OpCode::kArrayLen: {
      ArrayHandle h;
      TASKLETS_RETURN_IF_ERROR(pop_array(h));
      push(Value::from_int(static_cast<std::int64_t>(heap_[h].size())));
      break;
    }

    case OpCode::kIntrinsic: {
      fuel_used_ += 4;  // libm calls are pricier than simple ALU ops
      const auto id = static_cast<Intrinsic>(instr.operand);
      const IntrinsicInfo& info = intrinsic_info(id);
      if (info.float_args) {
        double y = 0.0, x;
        if (info.arity == 2) TASKLETS_RETURN_IF_ERROR(pop_float(y));
        TASKLETS_RETURN_IF_ERROR(pop_float(x));
        double r = 0.0;
        if (!eval_intrinsic_float(id, x, y, r)) {
          return trap(StatusCode::kInternal, "intrinsic dispatch mismatch");
        }
        push(Value::from_float(r));
      } else {
        std::int64_t y = 0, x;
        if (info.arity == 2) TASKLETS_RETURN_IF_ERROR(pop_int(y));
        TASKLETS_RETURN_IF_ERROR(pop_int(x));
        std::int64_t r = 0;
        if (!eval_intrinsic_int(id, x, y, r)) {
          return trap(StatusCode::kInternal, "intrinsic dispatch mismatch");
        }
        push(Value::from_int(r));
      }
      break;
    }

    default:
      // Quickened opcodes (>= kNumOpCodes) exist only inside an ExecPlan's
      // quick code; the reference stepper executes original program code and
      // can never encounter them.
      return trap(StatusCode::kInternal, "unexecutable opcode");
  }
  return Status::ok();
}

// --- fast-path engine ---------------------------------------------------------
//
// Executes one proven basic block at a time over the plan's quickened code,
// with the reference stepper's per-instruction fuel and stack-limit checks
// hoisted to block entry. Exact parity with the reference stepper is by
// construction: a block runs fast only when the plan proves it cannot trap
// on fuel or stack and cannot cross `target` mid-block; every other case —
// data-dependent fuel (kNewArray), a possible mid-block fuel/stack trap or
// slice-target crossing, a mid-block resume point after snapshot restore —
// drains through single checked reference steps, which re-evaluate the fast
// conditions at the next boundary. Fuel and instruction counters are
// charged when a block completes; a mid-block trap discards the machine, so
// only the trap's code and message (which carry the exact instruction
// index) are observable and both are reproduced exactly.

// Type-checked pops for un-quickened opcodes inside a fast block; trap
// messages match the reference stepper's pop_int/pop_float/pop_array.
#define TASKLETS_FPOP_INT(var)                                                \
  std::int64_t var;                                                           \
  {                                                                           \
    const Value v_ = *--sp;                                                   \
    if (!v_.is_int()) {                                                       \
      return fast_trap(StatusCode::kAborted,                                  \
                       std::string("expected int, got ") +                    \
                           std::string(to_string(v_.tag())),                  \
                       ip);                                                   \
    }                                                                         \
    var = v_.as_int();                                                        \
  }

#define TASKLETS_FPOP_FLOAT(var)                                              \
  double var;                                                                 \
  {                                                                           \
    const Value v_ = *--sp;                                                   \
    if (!v_.is_float()) {                                                     \
      return fast_trap(StatusCode::kAborted,                                  \
                       std::string("expected float, got ") +                  \
                           std::string(to_string(v_.tag())),                  \
                       ip);                                                   \
    }                                                                         \
    var = v_.as_float();                                                      \
  }

#define TASKLETS_FPOP_ARRAY(var)                                              \
  ArrayHandle var;                                                            \
  {                                                                           \
    const Value v_ = *--sp;                                                   \
    if (!v_.is_array()) {                                                     \
      return fast_trap(StatusCode::kAborted,                                  \
                       std::string("expected array, got ") +                  \
                           std::string(to_string(v_.tag())),                  \
                       ip);                                                   \
    }                                                                         \
    var = v_.as_array();                                                      \
  }

// Handler families. Checked forms replicate the reference stepper's pop
// order (b first, then a); unchecked forms rely on verifier-proven tags.
#define TASKLETS_FAST_BIN_INT(name, expr)                                     \
  TASKLETS_OP(name) : {                                                       \
    TASKLETS_FPOP_INT(b)                                                      \
    TASKLETS_FPOP_INT(a)                                                      \
    *sp++ = Value::from_int(expr);                                            \
    ++ip;                                                                     \
    TASKLETS_NEXT();                                                          \
  }

#define TASKLETS_FAST_BIN_INT_U(name, expr)                                   \
  TASKLETS_OP(name) : {                                                       \
    const std::int64_t b = (--sp)->as_int();                                  \
    const std::int64_t a = sp[-1].as_int();                                   \
    sp[-1] = Value::from_int(expr);                                           \
    ++ip;                                                                     \
    TASKLETS_NEXT();                                                          \
  }

#define TASKLETS_FAST_IMM_INT(name, expr)                                     \
  TASKLETS_OP(name) : {                                                       \
    const std::int64_t b = cur.operand;                                       \
    const std::int64_t a = sp[-1].as_int();                                   \
    sp[-1] = Value::from_int(expr);                                           \
    ip += 2;                                                                  \
    TASKLETS_NEXT();                                                          \
  }

#define TASKLETS_FAST_BIN_FLOAT(name, push_expr)                              \
  TASKLETS_OP(name) : {                                                       \
    TASKLETS_FPOP_FLOAT(b)                                                    \
    TASKLETS_FPOP_FLOAT(a)                                                    \
    *sp++ = push_expr;                                                        \
    ++ip;                                                                     \
    TASKLETS_NEXT();                                                          \
  }

#define TASKLETS_FAST_BIN_FLOAT_U(name, push_expr)                            \
  TASKLETS_OP(name) : {                                                       \
    const double b = (--sp)->as_float();                                      \
    const double a = sp[-1].as_float();                                       \
    sp[-1] = push_expr;                                                       \
    ++ip;                                                                     \
    TASKLETS_NEXT();                                                          \
  }

#define TASKLETS_FAST_IMM_FLOAT(name, push_expr)                              \
  TASKLETS_OP(name) : {                                                       \
    const double b =                                                          \
        std::bit_cast<double>(static_cast<std::uint64_t>(cur.operand));       \
    const double a = sp[-1].as_float();                                       \
    sp[-1] = push_expr;                                                       \
    ip += 2;                                                                  \
    TASKLETS_NEXT();                                                          \
  }

#if TASKLETS_COMPUTED_GOTO
// Token-threaded dispatch: each handler ends in its own indirect jump
// through the label table, giving the branch predictor one site per
// *predecessor opcode* instead of one shared site for the whole loop.
#define TASKLETS_OP(name) h_##name
#define TASKLETS_NEXT()                                                       \
  do {                                                                        \
    if (ip == block_end) goto fast_block_done;                                \
    cur = code[ip];                                                           \
    goto* kDispatch[static_cast<std::size_t>(cur.op)];                        \
  } while (0)
#else
#define TASKLETS_OP(name) case OpCode::name
#define TASKLETS_NEXT() goto fast_dispatch
#endif

Status Machine::run_fast(std::uint64_t target, bool& suspended) {
  suspended = false;
#if TASKLETS_COMPUTED_GOTO
  static const void* const kDispatch[kNumVmOps] = {
#define TASKLETS_LABEL_ADDR(name) &&h_##name,
      TASKLETS_BASE_OPS(TASKLETS_LABEL_ADDR)
      TASKLETS_QUICKENED_OPS(TASKLETS_LABEL_ADDR)
#undef TASKLETS_LABEL_ADDR
  };
#endif
  while (!halted_) {
    Frame& frame = frames_.back();
    const FunctionPlan& fplan = plan_->functions[frame.fn_idx];
    std::size_t ip = frame.ip;
    const std::uint32_t block_idx = fplan.block_of[ip];
    const BlockInfo* block =
        block_idx == kNoBlock ? nullptr : &fplan.blocks[block_idx];
    if (fuel_used_ >= target) {
      suspended = true;
      return Status::ok();
    }
    if (block == nullptr || block->begin != ip ||  // mid-block resume point
        block->variable_fuel ||                    // kNewArray: dynamic fuel
        fuel_used_ > limits_.max_fuel ||           // kCall overshoot pending
        block->base_fuel > limits_.max_fuel - fuel_used_ ||  // mid-block trap
        block->base_fuel >= target - fuel_used_ ||  // mid-block suspension
        stack_.size() + block->max_depth >= limits_.max_operand_stack) {
      // One checked reference step; conditions re-evaluate at the next
      // boundary, so this lane drains exactly as far as it has to.
      TASKLETS_RETURN_IF_ERROR(step());
      continue;
    }

    // Fast lane: the block cannot trap on fuel or stack and cannot cross
    // the slice target, so no per-instruction checks are needed.
    stack_.reserve(stack_.size() + block->max_depth + 2);
    const Instr* const code = fplan.quick.data();
    const Function& fn = *frame.fn;
    Value* const locals = locals_.data() + frame.locals_base;
    Value* sp = stack_.data() + stack_.size();
    const std::size_t block_end = block->end;
    Instr cur;
    auto fast_trap = [&fn](StatusCode code_, std::string what,
                           std::size_t trap_ip) {
      return make_error(code_, std::move(what) + " in '" + fn.name +
                                   "' at instruction " +
                                   std::to_string(trap_ip));
    };

#if TASKLETS_COMPUTED_GOTO
    TASKLETS_NEXT();
#else
  fast_dispatch:
    if (ip == block_end) goto fast_block_done;
    cur = code[ip];
    switch (cur.op) {
#endif

    // --- stack & constants --------------------------------------------------
    TASKLETS_OP(kNop) : {
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kPushInt) : {
      *sp++ = Value::from_int(cur.operand);
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kPushFloat) : {
      *sp++ = Value::from_float(
          std::bit_cast<double>(static_cast<std::uint64_t>(cur.operand)));
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kPop) : {
      --sp;
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kDup) : {
      *sp = sp[-1];
      ++sp;
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kSwap) : {
      const Value tmp = sp[-1];
      sp[-1] = sp[-2];
      sp[-2] = tmp;
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kLoadLocal) : {
      *sp++ = locals[static_cast<std::size_t>(cur.operand)];
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kStoreLocal) : {
      locals[static_cast<std::size_t>(cur.operand)] = *--sp;
      ++ip;
      TASKLETS_NEXT();
    }

    // --- integer arithmetic (checked: operand tags unproven) ----------------
    TASKLETS_FAST_BIN_INT(kAddInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b)))
    TASKLETS_FAST_BIN_INT(kSubInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b)))
    TASKLETS_FAST_BIN_INT(kMulInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)))
    TASKLETS_OP(kDivInt) : {
      TASKLETS_FPOP_INT(b)
      TASKLETS_FPOP_INT(a)
      if (b == 0) {
        return fast_trap(StatusCode::kAborted, "integer division by zero", ip);
      }
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
        return fast_trap(StatusCode::kAborted, "integer division overflow", ip);
      }
      *sp++ = Value::from_int(a / b);
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kModInt) : {
      TASKLETS_FPOP_INT(b)
      TASKLETS_FPOP_INT(a)
      if (b == 0) {
        return fast_trap(StatusCode::kAborted, "integer modulo by zero", ip);
      }
      *sp++ = Value::from_int(
          a == std::numeric_limits<std::int64_t>::min() && b == -1 ? 0 : a % b);
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kNegInt) : {
      TASKLETS_FPOP_INT(a)
      *sp++ = Value::from_int(
          static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a)));
      ++ip;
      TASKLETS_NEXT();
    }

    // --- float arithmetic (checked) -----------------------------------------
    TASKLETS_FAST_BIN_FLOAT(kAddFloat, Value::from_float(a + b))
    TASKLETS_FAST_BIN_FLOAT(kSubFloat, Value::from_float(a - b))
    TASKLETS_FAST_BIN_FLOAT(kMulFloat, Value::from_float(a * b))
    TASKLETS_FAST_BIN_FLOAT(kDivFloat, Value::from_float(a / b))
    TASKLETS_OP(kNegFloat) : {
      TASKLETS_FPOP_FLOAT(a)
      *sp++ = Value::from_float(-a);
      ++ip;
      TASKLETS_NEXT();
    }

    // --- bit operations (checked) -------------------------------------------
    TASKLETS_FAST_BIN_INT(kBitAnd, a & b)
    TASKLETS_FAST_BIN_INT(kBitOr, a | b)
    TASKLETS_FAST_BIN_INT(kBitXor, a ^ b)
    TASKLETS_FAST_BIN_INT(kShl, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63)))
    TASKLETS_FAST_BIN_INT(kShr, a >> (static_cast<std::uint64_t>(b) & 63))

    // --- comparisons (checked) ----------------------------------------------
    TASKLETS_FAST_BIN_INT(kCmpEqInt, a == b ? 1 : 0)
    TASKLETS_FAST_BIN_INT(kCmpNeInt, a != b ? 1 : 0)
    TASKLETS_FAST_BIN_INT(kCmpLtInt, a < b ? 1 : 0)
    TASKLETS_FAST_BIN_INT(kCmpLeInt, a <= b ? 1 : 0)
    TASKLETS_FAST_BIN_INT(kCmpGtInt, a > b ? 1 : 0)
    TASKLETS_FAST_BIN_INT(kCmpGeInt, a >= b ? 1 : 0)
    TASKLETS_FAST_BIN_FLOAT(kCmpEqFloat, Value::from_int(a == b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT(kCmpNeFloat, Value::from_int(a != b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT(kCmpLtFloat, Value::from_int(a < b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT(kCmpLeFloat, Value::from_int(a <= b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT(kCmpGtFloat, Value::from_int(a > b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT(kCmpGeFloat, Value::from_int(a >= b ? 1 : 0))

    // --- logic & conversions (checked) --------------------------------------
    TASKLETS_OP(kLogicalNot) : {
      TASKLETS_FPOP_INT(a)
      *sp++ = Value::from_int(a == 0 ? 1 : 0);
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kIntToFloat) : {
      TASKLETS_FPOP_INT(a)
      *sp++ = Value::from_float(static_cast<double>(a));
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kFloatToInt) : {
      TASKLETS_FPOP_FLOAT(a)
      if (std::isnan(a) || a < -9.223372036854776e18 ||
          a >= 9.223372036854776e18) {
        return fast_trap(StatusCode::kAborted, "float to int out of range", ip);
      }
      *sp++ = Value::from_int(static_cast<std::int64_t>(a));
      ++ip;
      TASKLETS_NEXT();
    }

    // --- control flow (always block terminators) ----------------------------
    TASKLETS_OP(kJump) : {
      ip = static_cast<std::size_t>(cur.operand);
      goto fast_block_done;
    }
    TASKLETS_OP(kJumpIfZero) : {
      TASKLETS_FPOP_INT(a)
      ip = a == 0 ? static_cast<std::size_t>(cur.operand) : ip + 1;
      goto fast_block_done;
    }
    TASKLETS_OP(kJumpIfNotZero) : {
      TASKLETS_FPOP_INT(a)
      ip = a != 0 ? static_cast<std::size_t>(cur.operand) : ip + 1;
      goto fast_block_done;
    }
    TASKLETS_OP(kCall) : { goto fast_block_call; }
    TASKLETS_OP(kReturn) : { goto fast_block_return; }
    TASKLETS_OP(kHalt) : { goto fast_block_halt; }

    // --- arrays (checked; kNewArray never reaches the fast lane) ------------
    TASKLETS_OP(kNewArray) : {
      // Blocks containing kNewArray have variable_fuel set and always run
      // through the checked stepper.
      return fast_trap(StatusCode::kInternal, "fast-path dispatch mismatch",
                       ip);
    }
    TASKLETS_OP(kArrayLoad) : {
      TASKLETS_FPOP_INT(idx)
      TASKLETS_FPOP_ARRAY(h)
      const auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return fast_trap(StatusCode::kAborted, "array index out of bounds", ip);
      }
      *sp++ = cells[static_cast<std::size_t>(idx)];
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kArrayStore) : {
      const Value value = *--sp;
      TASKLETS_FPOP_INT(idx)
      TASKLETS_FPOP_ARRAY(h)
      auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return fast_trap(StatusCode::kAborted, "array index out of bounds", ip);
      }
      cells[static_cast<std::size_t>(idx)] = value;
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kArrayLen) : {
      TASKLETS_FPOP_ARRAY(h)
      *sp++ = Value::from_int(static_cast<std::int64_t>(heap_[h].size()));
      ++ip;
      TASKLETS_NEXT();
    }

    // --- intrinsics (checked) -----------------------------------------------
    TASKLETS_OP(kIntrinsic) : {
      const auto id = static_cast<Intrinsic>(cur.operand);
      const IntrinsicInfo& info = intrinsic_info(id);
      if (info.float_args) {
        double y = 0.0;
        if (info.arity == 2) {
          TASKLETS_FPOP_FLOAT(y2)
          y = y2;
        }
        TASKLETS_FPOP_FLOAT(x)
        double r = 0.0;
        if (!eval_intrinsic_float(id, x, y, r)) {
          return fast_trap(StatusCode::kInternal, "intrinsic dispatch mismatch",
                           ip);
        }
        *sp++ = Value::from_float(r);
      } else {
        std::int64_t y = 0;
        if (info.arity == 2) {
          TASKLETS_FPOP_INT(y2)
          y = y2;
        }
        TASKLETS_FPOP_INT(x)
        std::int64_t r = 0;
        if (!eval_intrinsic_int(id, x, y, r)) {
          return fast_trap(StatusCode::kInternal, "intrinsic dispatch mismatch",
                           ip);
        }
        *sp++ = Value::from_int(r);
      }
      ++ip;
      TASKLETS_NEXT();
    }

    // --- quickened: unchecked integer arithmetic ----------------------------
    TASKLETS_FAST_BIN_INT_U(kAddIntU, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b)))
    TASKLETS_FAST_BIN_INT_U(kSubIntU, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b)))
    TASKLETS_FAST_BIN_INT_U(kMulIntU, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)))
    TASKLETS_OP(kDivIntU) : {
      const std::int64_t b = (--sp)->as_int();
      const std::int64_t a = sp[-1].as_int();
      if (b == 0) {
        return fast_trap(StatusCode::kAborted, "integer division by zero", ip);
      }
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
        return fast_trap(StatusCode::kAborted, "integer division overflow", ip);
      }
      sp[-1] = Value::from_int(a / b);
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kModIntU) : {
      const std::int64_t b = (--sp)->as_int();
      const std::int64_t a = sp[-1].as_int();
      if (b == 0) {
        return fast_trap(StatusCode::kAborted, "integer modulo by zero", ip);
      }
      sp[-1] = Value::from_int(
          a == std::numeric_limits<std::int64_t>::min() && b == -1 ? 0 : a % b);
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_FAST_BIN_INT_U(kBitAndU, a & b)
    TASKLETS_FAST_BIN_INT_U(kBitOrU, a | b)
    TASKLETS_FAST_BIN_INT_U(kBitXorU, a ^ b)
    TASKLETS_FAST_BIN_INT_U(kShlU, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63)))
    TASKLETS_FAST_BIN_INT_U(kShrU, a >> (static_cast<std::uint64_t>(b) & 63))
    TASKLETS_FAST_BIN_INT_U(kCmpEqIntU, a == b ? 1 : 0)
    TASKLETS_FAST_BIN_INT_U(kCmpNeIntU, a != b ? 1 : 0)
    TASKLETS_FAST_BIN_INT_U(kCmpLtIntU, a < b ? 1 : 0)
    TASKLETS_FAST_BIN_INT_U(kCmpLeIntU, a <= b ? 1 : 0)
    TASKLETS_FAST_BIN_INT_U(kCmpGtIntU, a > b ? 1 : 0)
    TASKLETS_FAST_BIN_INT_U(kCmpGeIntU, a >= b ? 1 : 0)
    TASKLETS_OP(kNegIntU) : {
      sp[-1] = Value::from_int(static_cast<std::int64_t>(
          0 - static_cast<std::uint64_t>(sp[-1].as_int())));
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kLogicalNotU) : {
      sp[-1] = Value::from_int(sp[-1].as_int() == 0 ? 1 : 0);
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kIntToFloatU) : {
      sp[-1] = Value::from_float(static_cast<double>(sp[-1].as_int()));
      ++ip;
      TASKLETS_NEXT();
    }

    // --- quickened: unchecked float arithmetic ------------------------------
    TASKLETS_FAST_BIN_FLOAT_U(kAddFloatU, Value::from_float(a + b))
    TASKLETS_FAST_BIN_FLOAT_U(kSubFloatU, Value::from_float(a - b))
    TASKLETS_FAST_BIN_FLOAT_U(kMulFloatU, Value::from_float(a * b))
    TASKLETS_FAST_BIN_FLOAT_U(kDivFloatU, Value::from_float(a / b))
    TASKLETS_FAST_BIN_FLOAT_U(kCmpEqFloatU, Value::from_int(a == b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT_U(kCmpNeFloatU, Value::from_int(a != b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT_U(kCmpLtFloatU, Value::from_int(a < b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT_U(kCmpLeFloatU, Value::from_int(a <= b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT_U(kCmpGtFloatU, Value::from_int(a > b ? 1 : 0))
    TASKLETS_FAST_BIN_FLOAT_U(kCmpGeFloatU, Value::from_int(a >= b ? 1 : 0))
    TASKLETS_OP(kNegFloatU) : {
      sp[-1] = Value::from_float(-sp[-1].as_float());
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kFloatToIntU) : {
      const double a = sp[-1].as_float();
      if (std::isnan(a) || a < -9.223372036854776e18 ||
          a >= 9.223372036854776e18) {
        return fast_trap(StatusCode::kAborted, "float to int out of range", ip);
      }
      sp[-1] = Value::from_int(static_cast<std::int64_t>(a));
      ++ip;
      TASKLETS_NEXT();
    }

    // --- quickened: branches on a proven-int condition ----------------------
    TASKLETS_OP(kJumpIfZeroU) : {
      const std::int64_t a = (--sp)->as_int();
      ip = a == 0 ? static_cast<std::size_t>(cur.operand) : ip + 1;
      goto fast_block_done;
    }
    TASKLETS_OP(kJumpIfNotZeroU) : {
      const std::int64_t a = (--sp)->as_int();
      ip = a != 0 ? static_cast<std::size_t>(cur.operand) : ip + 1;
      goto fast_block_done;
    }

    // --- quickened: arrays with proven ref/index tags -----------------------
    TASKLETS_OP(kArrayLoadU) : {
      const std::int64_t idx = (--sp)->as_int();
      const ArrayHandle h = (--sp)->as_array();
      const auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return fast_trap(StatusCode::kAborted, "array index out of bounds", ip);
      }
      *sp++ = cells[static_cast<std::size_t>(idx)];
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kArrayStoreU) : {
      const Value value = *--sp;
      const std::int64_t idx = (--sp)->as_int();
      const ArrayHandle h = (--sp)->as_array();
      auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return fast_trap(StatusCode::kAborted, "array index out of bounds", ip);
      }
      cells[static_cast<std::size_t>(idx)] = value;
      ++ip;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kArrayLenU) : {
      sp[-1] = Value::from_int(
          static_cast<std::int64_t>(heap_[sp[-1].as_array()].size()));
      ++ip;
      TASKLETS_NEXT();
    }

    // --- quickened: intrinsic with proven argument tags ---------------------
    TASKLETS_OP(kIntrinsicU) : {
      const auto id = static_cast<Intrinsic>(cur.operand);
      const IntrinsicInfo& info = intrinsic_info(id);
      if (info.float_args) {
        double y = 0.0;
        if (info.arity == 2) y = (--sp)->as_float();
        const double x = (--sp)->as_float();
        double r = 0.0;
        if (!eval_intrinsic_float(id, x, y, r)) {
          return fast_trap(StatusCode::kInternal, "intrinsic dispatch mismatch",
                           ip);
        }
        *sp++ = Value::from_float(r);
      } else {
        std::int64_t y = 0;
        if (info.arity == 2) y = (--sp)->as_int();
        const std::int64_t x = (--sp)->as_int();
        std::int64_t r = 0;
        if (!eval_intrinsic_int(id, x, y, r)) {
          return fast_trap(StatusCode::kInternal, "intrinsic dispatch mismatch",
                           ip);
        }
        *sp++ = Value::from_int(r);
      }
      ++ip;
      TASKLETS_NEXT();
    }

    // --- quickened: fused `push_i k; <op>` (operand = k, 2 slots) -----------
    TASKLETS_FAST_IMM_INT(kAddIntImmU, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b)))
    TASKLETS_FAST_IMM_INT(kSubIntImmU, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b)))
    TASKLETS_FAST_IMM_INT(kMulIntImmU, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)))
    TASKLETS_FAST_IMM_INT(kCmpEqIntImmU, a == b ? 1 : 0)
    TASKLETS_FAST_IMM_INT(kCmpNeIntImmU, a != b ? 1 : 0)
    TASKLETS_FAST_IMM_INT(kCmpLtIntImmU, a < b ? 1 : 0)
    TASKLETS_FAST_IMM_INT(kCmpLeIntImmU, a <= b ? 1 : 0)
    TASKLETS_FAST_IMM_INT(kCmpGtIntImmU, a > b ? 1 : 0)
    TASKLETS_FAST_IMM_INT(kCmpGeIntImmU, a >= b ? 1 : 0)

    // --- quickened: fused `push_f x; <op>` (operand = IEEE bits, 2 slots) ---
    TASKLETS_FAST_IMM_FLOAT(kAddFloatImmU, Value::from_float(a + b))
    TASKLETS_FAST_IMM_FLOAT(kSubFloatImmU, Value::from_float(a - b))
    TASKLETS_FAST_IMM_FLOAT(kMulFloatImmU, Value::from_float(a * b))
    TASKLETS_FAST_IMM_FLOAT(kDivFloatImmU, Value::from_float(a / b))
    TASKLETS_FAST_IMM_FLOAT(kCmpEqFloatImmU, Value::from_int(a == b ? 1 : 0))
    TASKLETS_FAST_IMM_FLOAT(kCmpNeFloatImmU, Value::from_int(a != b ? 1 : 0))
    TASKLETS_FAST_IMM_FLOAT(kCmpLtFloatImmU, Value::from_int(a < b ? 1 : 0))
    TASKLETS_FAST_IMM_FLOAT(kCmpLeFloatImmU, Value::from_int(a <= b ? 1 : 0))
    TASKLETS_FAST_IMM_FLOAT(kCmpGtFloatImmU, Value::from_int(a > b ? 1 : 0))
    TASKLETS_FAST_IMM_FLOAT(kCmpGeFloatImmU, Value::from_int(a >= b ? 1 : 0))

    // --- quickened: fused local loads ---------------------------------------
    TASKLETS_OP(kLoadLocal2) : {
      const auto packed = static_cast<std::uint64_t>(cur.operand);
      *sp++ = locals[packed & 0xFFFFFFFFu];
      *sp++ = locals[packed >> 32];
      ip += 2;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kArrayLoadLLU) : {
      const auto packed = static_cast<std::uint64_t>(cur.operand);
      const ArrayHandle h = locals[packed & 0xFFFFFFFFu].as_array();
      const std::int64_t idx = locals[packed >> 32].as_int();
      const auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        // The trap site is the fused aload, two slots past the window start.
        return fast_trap(StatusCode::kAborted, "array index out of bounds",
                         ip + 2);
      }
      *sp++ = cells[static_cast<std::size_t>(idx)];
      ip += 3;
      TASKLETS_NEXT();
    }
    TASKLETS_OP(kArrayLoadLLC) : {
      // Tag-checked variant: check order (index first, then ref) and trap
      // site match the reference stepper executing the unfused triple.
      const auto packed = static_cast<std::uint64_t>(cur.operand);
      const Value vref = locals[packed & 0xFFFFFFFFu];
      const Value vidx = locals[packed >> 32];
      if (!vidx.is_int()) {
        return fast_trap(StatusCode::kAborted,
                         std::string("expected int, got ") +
                             std::string(to_string(vidx.tag())),
                         ip + 2);
      }
      if (!vref.is_array()) {
        return fast_trap(StatusCode::kAborted,
                         std::string("expected array, got ") +
                             std::string(to_string(vref.tag())),
                         ip + 2);
      }
      const std::int64_t idx = vidx.as_int();
      const auto& cells = heap_[vref.as_array()];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return fast_trap(StatusCode::kAborted, "array index out of bounds",
                         ip + 2);
      }
      *sp++ = cells[static_cast<std::size_t>(idx)];
      ip += 3;
      TASKLETS_NEXT();
    }

#if !TASKLETS_COMPUTED_GOTO
    default:
      return fast_trap(StatusCode::kInternal, "fast-path dispatch mismatch",
                       ip);
    }  // switch
#endif

  fast_block_done:
    // Whole block retired (fallthrough or branch): publish the cursor and
    // charge the proven block totals in one shot.
    stack_.set_size(static_cast<std::size_t>(sp - stack_.data()));
    frame.ip = ip;
    fuel_used_ += block->base_fuel;
    instructions_ += block->end - block->begin;
    continue;

  fast_block_call:
    stack_.set_size(static_cast<std::size_t>(sp - stack_.data()));
    frame.ip = ip + 1;  // resume point for the caller, as in the stepper
    fuel_used_ += block->base_fuel;
    instructions_ += block->end - block->begin;
    TASKLETS_RETURN_IF_ERROR(enter(static_cast<std::uint32_t>(cur.operand),
                                   /*from_host=*/false, nullptr));
    continue;

  fast_block_return:
    stack_.set_size(static_cast<std::size_t>(sp - stack_.data()));
    fuel_used_ += block->base_fuel;
    instructions_ += block->end - block->begin;
    TASKLETS_RETURN_IF_ERROR(do_return());
    continue;

  fast_block_halt:
    stack_.set_size(static_cast<std::size_t>(sp - stack_.data()));
    fuel_used_ += block->base_fuel;
    instructions_ += block->end - block->begin;
    halted_ = true;
    continue;
  }
  return Status::ok();
}

#undef TASKLETS_OP
#undef TASKLETS_NEXT
#undef TASKLETS_FPOP_INT
#undef TASKLETS_FPOP_FLOAT
#undef TASKLETS_FPOP_ARRAY
#undef TASKLETS_FAST_BIN_INT
#undef TASKLETS_FAST_BIN_INT_U
#undef TASKLETS_FAST_IMM_INT
#undef TASKLETS_FAST_BIN_FLOAT
#undef TASKLETS_FAST_BIN_FLOAT_U
#undef TASKLETS_FAST_IMM_FLOAT

Status Machine::start(const std::vector<HostArg>& args) {
  stack_.reserve(256);
  locals_.reserve(256);
  frames_.reserve(16);
  return enter(program_.entry(), /*from_host=*/true, &args);
}

Result<ExecOutcome> Machine::run(const std::vector<HostArg>& args) {
  TASKLETS_RETURN_IF_ERROR(start(args));
  if (fast_enabled()) {
    bool suspended = false;  // unreachable: the target is unlimited
    TASKLETS_RETURN_IF_ERROR(
        run_fast(std::numeric_limits<std::uint64_t>::max(), suspended));
  } else if (profile_ != nullptr) {
    bool suspended = false;  // unreachable: the target is unlimited
    TASKLETS_RETURN_IF_ERROR(
        run_profiled(std::numeric_limits<std::uint64_t>::max(), suspended));
  } else {
    while (!halted_) {
      TASKLETS_RETURN_IF_ERROR(step());
    }
  }
  ExecOutcome outcome;
  TASKLETS_ASSIGN_OR_RETURN(outcome.result, value_to_host(pop()));
  outcome.fuel_used = fuel_used_;
  outcome.instructions = instructions_;
  outcome.peak_call_depth = peak_depth_;
  return outcome;
}

// GCC 12 false positive: the inactive SliceOutcome alternative's members get
// flagged maybe-uninitialized when the variant construction inlines into
// Result's move path (-O2 / -fsanitize). Same suppression as value_to_host.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Result<SliceOutcome> Machine::run_slice(std::uint64_t fuel_slice) {
  const std::uint64_t target =
      fuel_slice == 0 ? std::numeric_limits<std::uint64_t>::max()
                      : fuel_used_ + fuel_slice;
  bool suspended = false;
  if (fast_enabled()) {
    TASKLETS_RETURN_IF_ERROR(run_fast(target, suspended));
  } else if (profile_ != nullptr) {
    TASKLETS_RETURN_IF_ERROR(run_profiled(target, suspended));
  } else {
    while (!halted_) {
      if (fuel_used_ >= target) {
        suspended = true;
        break;
      }
      TASKLETS_RETURN_IF_ERROR(step());
    }
  }
  if (suspended) {
    Suspension suspension;
    suspension.state = snapshot();
    suspension.fuel_used = fuel_used_;
    suspension.instructions = instructions_;
    return SliceOutcome{std::move(suspension)};
  }
  ExecOutcome outcome;
  TASKLETS_ASSIGN_OR_RETURN(outcome.result, value_to_host(pop()));
  outcome.fuel_used = fuel_used_;
  outcome.instructions = instructions_;
  outcome.peak_call_depth = peak_depth_;
  return SliceOutcome{std::move(outcome)};
}
#pragma GCC diagnostic pop

// --- snapshot encoding ("TSNP") ----------------------------------------------

namespace snapshot_format {
constexpr std::uint32_t kMagic = 0x54534E50;  // "TSNP"
constexpr std::uint16_t kVersion = 1;
}  // namespace snapshot_format

namespace {
void encode_value(ByteWriter& w, const Value& v) {
  w.write_u8(static_cast<std::uint8_t>(v.tag()));
  switch (v.tag()) {
    case ValueTag::kInt: w.write_varint_signed(v.as_int()); break;
    case ValueTag::kFloat: w.write_f64(v.as_float()); break;
    case ValueTag::kArray: w.write_u32(v.as_array()); break;
  }
}

Result<Value> decode_value(ByteReader& r) {
  TASKLETS_ASSIGN_OR_RETURN(auto tag, r.read_u8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kInt: {
      TASKLETS_ASSIGN_OR_RETURN(auto v, r.read_varint_signed());
      return Value::from_int(v);
    }
    case ValueTag::kFloat: {
      TASKLETS_ASSIGN_OR_RETURN(auto v, r.read_f64());
      return Value::from_float(v);
    }
    case ValueTag::kArray: {
      TASKLETS_ASSIGN_OR_RETURN(auto v, r.read_u32());
      return Value::from_array(v);
    }
  }
  return make_error(StatusCode::kDataLoss, "bad value tag in snapshot");
}
}  // namespace

Bytes Machine::snapshot() const {
  ByteWriter w;
  w.write_u32(snapshot_format::kMagic);
  w.write_u16(snapshot_format::kVersion);
  w.write_u64(program_.content_hash());
  w.write_varint(fuel_used_);
  w.write_varint(peak_depth_);
  w.write_varint(stack_.size());
  for (const Value& v : stack_) encode_value(w, v);
  w.write_varint(locals_.size());
  for (const Value& v : locals_) encode_value(w, v);
  w.write_varint(frames_.size());
  for (const Frame& frame : frames_) {
    // Function identity travels as an index (pointers are host-local).
    w.write_varint(frame.fn_idx);
    w.write_varint(frame.ip);
    w.write_varint(frame.locals_base);
  }
  w.write_varint(heap_.size());
  for (const auto& cells : heap_) {
    w.write_varint(cells.size());
    for (const Value& v : cells) encode_value(w, v);
  }
  return std::move(w).take();
}

Status Machine::restore(std::span<const std::byte> snapshot_bytes) {
  ByteReader r(snapshot_bytes);
  TASKLETS_ASSIGN_OR_RETURN(auto magic, r.read_u32());
  if (magic != snapshot_format::kMagic) {
    return make_error(StatusCode::kDataLoss, "bad snapshot magic");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto version, r.read_u16());
  if (version != snapshot_format::kVersion) {
    return make_error(StatusCode::kDataLoss, "unsupported snapshot version");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto hash, r.read_u64());
  if (hash != program_.content_hash()) {
    return make_error(StatusCode::kFailedPrecondition,
                      "snapshot belongs to a different program");
  }
  TASKLETS_ASSIGN_OR_RETURN(fuel_used_, r.read_varint());
  if (fuel_used_ > limits_.max_fuel) {
    return make_error(StatusCode::kInvalidArgument, "snapshot exceeds fuel limit");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto peak, r.read_varint());
  peak_depth_ = static_cast<std::uint32_t>(peak);

  TASKLETS_ASSIGN_OR_RETURN(auto stack_size, r.read_varint());
  if (stack_size > limits_.max_operand_stack) {
    return make_error(StatusCode::kInvalidArgument, "snapshot stack too deep");
  }
  stack_.clear();
  stack_.reserve(stack_size);
  for (std::uint64_t i = 0; i < stack_size; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto v, decode_value(r));
    stack_.push_back(v);
  }
  TASKLETS_ASSIGN_OR_RETURN(auto locals_size, r.read_varint());
  if (locals_size > limits_.max_operand_stack) {
    return make_error(StatusCode::kInvalidArgument, "snapshot locals too large");
  }
  locals_.clear();
  locals_.reserve(locals_size);
  for (std::uint64_t i = 0; i < locals_size; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto v, decode_value(r));
    locals_.push_back(v);
  }

  TASKLETS_ASSIGN_OR_RETURN(auto frame_count, r.read_varint());
  if (frame_count == 0 || frame_count > limits_.max_call_depth) {
    return make_error(StatusCode::kInvalidArgument, "snapshot frame count invalid");
  }
  frames_.clear();
  std::vector<std::pair<std::uint32_t, std::size_t>> frame_meta;  // (fn, ip)
  std::size_t expected_base = 0;
  for (std::uint64_t i = 0; i < frame_count; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto fn_idx, r.read_varint());
    TASKLETS_ASSIGN_OR_RETURN(auto ip, r.read_varint());
    TASKLETS_ASSIGN_OR_RETURN(auto locals_base, r.read_varint());
    if (fn_idx >= program_.function_count()) {
      return make_error(StatusCode::kInvalidArgument, "snapshot frame function");
    }
    const Function& fn = program_.function(static_cast<std::uint32_t>(fn_idx));
    if (ip >= fn.code.size()) {
      return make_error(StatusCode::kInvalidArgument, "snapshot frame ip");
    }
    if (locals_base != expected_base) {
      return make_error(StatusCode::kInvalidArgument, "snapshot locals layout");
    }
    expected_base += fn.num_locals;
    Frame frame;
    frame.fn = &fn;
    frame.fn_idx = static_cast<std::uint32_t>(fn_idx);
    frame.ip = static_cast<std::size_t>(ip);
    frame.locals_base = static_cast<std::size_t>(locals_base);
    frames_.push_back(frame);
    frame_meta.emplace_back(static_cast<std::uint32_t>(fn_idx),
                            static_cast<std::size_t>(ip));
  }
  if (expected_base != locals_.size()) {
    return make_error(StatusCode::kInvalidArgument, "snapshot locals size");
  }

  TASKLETS_ASSIGN_OR_RETURN(auto heap_count, r.read_varint());
  heap_.clear();
  heap_cells_ = 0;
  for (std::uint64_t i = 0; i < heap_count; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto len, r.read_varint());
    heap_cells_ += len;
    if (heap_cells_ > limits_.max_heap_cells) {
      return make_error(StatusCode::kInvalidArgument, "snapshot heap too large");
    }
    std::vector<Value> cells;
    cells.reserve(len);
    for (std::uint64_t c = 0; c < len; ++c) {
      TASKLETS_ASSIGN_OR_RETURN(auto v, decode_value(r));
      cells.push_back(v);
    }
    heap_.push_back(std::move(cells));
  }
  if (!r.exhausted()) {
    return make_error(StatusCode::kDataLoss, "trailing bytes in snapshot");
  }

  // Every array handle anywhere in the state must point into the heap.
  auto handles_valid = [&](const auto& values) {
    for (const Value& v : values) {
      if (v.is_array() && v.as_array() >= heap_.size()) return false;
    }
    return true;
  };
  if (!handles_valid(stack_) || !handles_valid(locals_)) {
    return make_error(StatusCode::kInvalidArgument, "snapshot array handle");
  }
  for (const auto& cells : heap_) {
    if (!handles_valid(cells)) {
      return make_error(StatusCode::kInvalidArgument, "snapshot array handle");
    }
  }

  // Call-chain consistency: each suspended caller must sit immediately after
  // a kCall to the next frame's function.
  for (std::size_t i = 0; i + 1 < frame_meta.size(); ++i) {
    const Function& fn = program_.function(frame_meta[i].first);
    const std::size_t ip = frame_meta[i].second;
    if (ip == 0 || fn.code[ip - 1].op != OpCode::kCall ||
        fn.code[ip - 1].operand !=
            static_cast<std::int64_t>(frame_meta[i + 1].first)) {
      return make_error(StatusCode::kInvalidArgument, "snapshot call chain");
    }
  }

  // Operand-stack depth proven against the verifier's depth map: callers
  // contribute their depth after the call minus the pending result; the top
  // frame contributes its depth before the next instruction.
  TASKLETS_ASSIGN_OR_RETURN(auto depth_map, stack_depth_map(program_));
  std::int64_t expected_depth = 0;
  for (std::size_t i = 0; i < frame_meta.size(); ++i) {
    const auto [fn_idx, ip] = frame_meta[i];
    const int depth = depth_map[fn_idx][ip];
    if (depth < 0) {
      return make_error(StatusCode::kInvalidArgument,
                        "snapshot ip at unreachable instruction");
    }
    expected_depth += i + 1 < frame_meta.size() ? depth - 1 : depth;
  }
  if (expected_depth < 0 ||
      static_cast<std::size_t>(expected_depth) != stack_.size()) {
    return make_error(StatusCode::kInvalidArgument, "snapshot stack depth");
  }
  halted_ = false;
  return Status::ok();
}

}  // namespace

void ExecProfile::merge(const ExecProfile& other) noexcept {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].count += other.ops[i].count;
    ops[i].nanos += other.ops[i].nanos;
  }
  instructions += other.instructions;
}

std::string ExecProfile::to_string() const {
  // Opcodes hit, heaviest total time first.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].count > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return ops[a].nanos != ops[b].nanos ? ops[a].nanos > ops[b].nanos
                                        : ops[a].count > ops[b].count;
  });
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof buf, "%-14s %12s %12s %8s\n", "opcode", "count",
                "total_ns", "avg_ns");
  out += buf;
  for (const std::size_t i : order) {
    const double avg =
        static_cast<double>(ops[i].nanos) / static_cast<double>(ops[i].count);
    std::snprintf(buf, sizeof buf, "%-14s %12llu %12llu %8.1f\n",
                  std::string(op_info(static_cast<OpCode>(i)).name).c_str(),
                  static_cast<unsigned long long>(ops[i].count),
                  static_cast<unsigned long long>(ops[i].nanos), avg);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "instructions   %12llu\n",
                static_cast<unsigned long long>(instructions));
  out += buf;
  return out;
}

std::string ExecProfile::to_json() const {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].count > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return ops[a].nanos != ops[b].nanos ? ops[a].nanos > ops[b].nanos
                                        : ops[a].count > ops[b].count;
  });
  std::string out = "{\"instructions\":" + std::to_string(instructions);
  out += ",\"ops\":[";
  char buf[160];
  bool first = true;
  for (const std::size_t i : order) {
    const double avg =
        static_cast<double>(ops[i].nanos) / static_cast<double>(ops[i].count);
    // Opcode names are plain identifiers; no JSON escaping needed.
    std::snprintf(buf, sizeof buf,
                  "%s{\"op\":\"%s\",\"count\":%llu,\"total_ns\":%llu,"
                  "\"avg_ns\":%.1f}",
                  first ? "" : ",",
                  std::string(op_info(static_cast<OpCode>(i)).name).c_str(),
                  static_cast<unsigned long long>(ops[i].count),
                  static_cast<unsigned long long>(ops[i].nanos), avg);
    out += buf;
    first = false;
  }
  out += "]}";
  return out;
}

namespace {

// Resolve the engine for one run. Profiling forces the reference stepper
// (per-opcode attribution needs per-instruction stepping); otherwise use the
// caller's plan when it matches this program, or analyze here. A program
// that analyze() rejects silently falls back to the reference engine, which
// then traps or succeeds exactly as it always has.
void configure_engine(Machine& machine, const Program& program,
                      const ExecOptions& options, ExecPlan& plan_storage) {
  machine.set_profile(options.profile);
  if (options.engine != Engine::kFast || options.profile != nullptr) {
    machine.set_engine(Engine::kReference);
    return;
  }
  const ExecPlan* plan = nullptr;
  if (options.plan != nullptr && options.plan->compatible_with(program)) {
    plan = options.plan;
  } else {
    auto analyzed = analyze(program);
    if (analyzed.is_ok()) {
      plan_storage = std::move(analyzed).value();
      plan = &plan_storage;
    }
  }
  machine.set_plan(plan);
  machine.set_engine(plan != nullptr ? Engine::kFast : Engine::kReference);
}

}  // namespace

Result<ExecOutcome> execute(const Program& program,
                            const std::vector<HostArg>& args,
                            const ExecLimits& limits, ExecProfile* profile) {
  ExecOptions options;
  options.profile = profile;
  return execute(program, args, limits, options);
}

Result<ExecOutcome> execute(const Program& program,
                            const std::vector<HostArg>& args,
                            const ExecLimits& limits,
                            const ExecOptions& options) {
  Machine machine(program, limits);
  ExecPlan plan_storage;
  configure_engine(machine, program, options, plan_storage);
  return machine.run(args);
}

Result<ExecOutcome> verify_and_execute(const Program& program,
                                       const std::vector<HostArg>& args,
                                       const ExecLimits& limits,
                                       ExecProfile* profile) {
  TASKLETS_RETURN_IF_ERROR(verify(program));
  return execute(program, args, limits, profile);
}

Result<SliceOutcome> execute_slice(const Program& program,
                                   const std::vector<HostArg>& args,
                                   const ExecLimits& limits,
                                   std::uint64_t fuel_slice,
                                   ExecProfile* profile) {
  ExecOptions options;
  options.profile = profile;
  return execute_slice(program, args, limits, fuel_slice, options);
}

Result<SliceOutcome> execute_slice(const Program& program,
                                   const std::vector<HostArg>& args,
                                   const ExecLimits& limits,
                                   std::uint64_t fuel_slice,
                                   const ExecOptions& options) {
  Machine machine(program, limits);
  ExecPlan plan_storage;
  configure_engine(machine, program, options, plan_storage);
  TASKLETS_RETURN_IF_ERROR(machine.start(args));
  return machine.run_slice(fuel_slice);
}

Result<std::uint64_t> snapshot_fuel(std::span<const std::byte> state) {
  ByteReader r(state);
  TASKLETS_ASSIGN_OR_RETURN(auto magic, r.read_u32());
  if (magic != snapshot_format::kMagic) {
    return make_error(StatusCode::kDataLoss, "bad snapshot magic");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto version, r.read_u16());
  if (version != snapshot_format::kVersion) {
    return make_error(StatusCode::kDataLoss, "unsupported snapshot version");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto hash, r.read_u64());
  (void)hash;
  return r.read_varint();
}

Result<SliceOutcome> resume_slice(const Program& program,
                                  const Suspension& suspension,
                                  const ExecLimits& limits,
                                  std::uint64_t fuel_slice,
                                  ExecProfile* profile) {
  ExecOptions options;
  options.profile = profile;
  return resume_slice(program, suspension, limits, fuel_slice, options);
}

Result<SliceOutcome> resume_slice(const Program& program,
                                  const Suspension& suspension,
                                  const ExecLimits& limits,
                                  std::uint64_t fuel_slice,
                                  const ExecOptions& options) {
  Machine machine(program, limits);
  ExecPlan plan_storage;
  configure_engine(machine, program, options, plan_storage);
  TASKLETS_RETURN_IF_ERROR(machine.restore(std::span<const std::byte>(
      suspension.state.data(), suspension.state.size())));
  machine.set_instructions(suspension.instructions);
  return machine.run_slice(fuel_slice);
}

}  // namespace tasklets::tvm

#include "tvm/interpreter.hpp"

#include <bit>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "common/bytes.hpp"
#include "tvm/value.hpp"
#include "tvm/verifier.hpp"

namespace tasklets::tvm {

namespace {

struct Frame {
  const Function* fn = nullptr;
  std::size_t ip = 0;
  std::size_t locals_base = 0;
};

class Machine {
 public:
  Machine(const Program& program, const ExecLimits& limits)
      : program_(program), limits_(limits) {}

  Result<ExecOutcome> run(const std::vector<HostArg>& args);

  // Resumable execution (see interpreter.hpp).
  Status start(const std::vector<HostArg>& args);
  Status restore(std::span<const std::byte> snapshot);
  Result<SliceOutcome> run_slice(std::uint64_t fuel_slice);

  void set_profile(ExecProfile* profile) noexcept { profile_ = profile; }
  // Seeds the retired-instruction counter when resuming from a Suspension
  // whose in-memory count survived (same-host slicing).
  void set_instructions(std::uint64_t n) noexcept { instructions_ = n; }

 private:
  [[nodiscard]] Bytes snapshot() const;
  // --- error helpers -------------------------------------------------------
  Status trap(StatusCode code, std::string what) const {
    const Frame& f = frames_.back();
    return make_error(code, std::move(what) + " in '" + f.fn->name +
                                "' at instruction " + std::to_string(f.ip - 1));
  }

  // --- stack helpers (verifier guarantees no underflow) --------------------
  void push(Value v) { stack_.push_back(v); }
  Value pop() {
    Value v = stack_.back();
    stack_.pop_back();
    return v;
  }
  Value& top() { return stack_.back(); }

  Status pop_int(std::int64_t& out) {
    const Value v = pop();
    if (!v.is_int()) {
      return trap(StatusCode::kAborted,
                  std::string("expected int, got ") + std::string(to_string(v.tag())));
    }
    out = v.as_int();
    return Status::ok();
  }
  Status pop_float(double& out) {
    const Value v = pop();
    if (!v.is_float()) {
      return trap(StatusCode::kAborted,
                  std::string("expected float, got ") + std::string(to_string(v.tag())));
    }
    out = v.as_float();
    return Status::ok();
  }
  Status pop_array(ArrayHandle& out) {
    const Value v = pop();
    if (!v.is_array()) {
      return trap(StatusCode::kAborted,
                  std::string("expected array, got ") + std::string(to_string(v.tag())));
    }
    out = v.as_array();
    return Status::ok();
  }

  // --- heap ----------------------------------------------------------------
  Result<ArrayHandle> alloc_array(std::int64_t length) {
    if (length < 0) {
      return trap(StatusCode::kAborted, "negative array length");
    }
    const auto cells = static_cast<std::uint64_t>(length);
    if (heap_cells_ + cells > limits_.max_heap_cells) {
      return trap(StatusCode::kResourceExhausted, "heap limit exceeded");
    }
    heap_cells_ += cells;
    heap_.emplace_back(static_cast<std::size_t>(length), Value::from_int(0));
    return static_cast<ArrayHandle>(heap_.size() - 1);
  }

  // --- frames ----------------------------------------------------------------
  Status enter(std::uint32_t fn_idx, bool from_host,
               const std::vector<HostArg>* host_args);
  Status do_return();

  // --- marshalling -----------------------------------------------------------
  Result<Value> host_to_value(const HostArg& arg);
  Result<HostArg> value_to_host(Value v) const;

  Status step();  // executes one instruction
  // step() plus per-opcode timing into profile_. Kept out of step() so the
  // unprofiled path carries no clock reads.
  Status step_profiled();
  // One step, dispatched on whether profiling is on.
  Status advance() { return profile_ != nullptr ? step_profiled() : step(); }

  const Program& program_;
  const ExecLimits& limits_;
  std::vector<Value> stack_;
  std::vector<Value> locals_;
  std::vector<Frame> frames_;
  std::vector<std::vector<Value>> heap_;
  std::uint64_t heap_cells_ = 0;
  std::uint64_t fuel_used_ = 0;
  std::uint64_t instructions_ = 0;
  std::uint32_t peak_depth_ = 0;
  bool halted_ = false;
  ExecProfile* profile_ = nullptr;
};

Status Machine::enter(std::uint32_t fn_idx, bool from_host,
                      const std::vector<HostArg>* host_args) {
  const Function& fn = program_.function(fn_idx);
  if (frames_.size() >= limits_.max_call_depth) {
    return make_error(StatusCode::kResourceExhausted,
                      "call depth limit exceeded entering '" + fn.name + "'");
  }
  Frame frame;
  frame.fn = &fn;
  frame.ip = 0;
  frame.locals_base = locals_.size();
  locals_.resize(locals_.size() + fn.num_locals, Value::from_int(0));
  if (from_host) {
    if (host_args->size() != fn.arity) {
      return make_error(StatusCode::kInvalidArgument,
                        "entry '" + fn.name + "' expects " +
                            std::to_string(fn.arity) + " args, got " +
                            std::to_string(host_args->size()));
    }
    for (std::uint32_t i = 0; i < fn.arity; ++i) {
      TASKLETS_ASSIGN_OR_RETURN(auto v, host_to_value((*host_args)[i]));
      locals_[frame.locals_base + i] = v;
    }
  } else {
    // Arguments were pushed left-to-right, so the last argument is on top.
    for (std::uint32_t i = fn.arity; i-- > 0;) {
      locals_[frame.locals_base + i] = pop();
    }
  }
  frames_.push_back(frame);
  peak_depth_ = std::max(peak_depth_, static_cast<std::uint32_t>(frames_.size()));
  return Status::ok();
}

Status Machine::do_return() {
  const Frame frame = frames_.back();
  frames_.pop_back();
  locals_.resize(frame.locals_base);
  // Result value stays on the operand stack for the caller (or the host).
  if (frames_.empty()) halted_ = true;
  return Status::ok();
}

Result<Value> Machine::host_to_value(const HostArg& arg) {
  if (const auto* i = std::get_if<std::int64_t>(&arg)) {
    return Value::from_int(*i);
  }
  if (const auto* f = std::get_if<double>(&arg)) {
    return Value::from_float(*f);
  }
  if (const auto* iv = std::get_if<std::vector<std::int64_t>>(&arg)) {
    TASKLETS_ASSIGN_OR_RETURN(
        auto h, alloc_array(static_cast<std::int64_t>(iv->size())));
    auto& cells = heap_[h];
    for (std::size_t i = 0; i < iv->size(); ++i) {
      cells[i] = Value::from_int((*iv)[i]);
    }
    return Value::from_array(h);
  }
  const auto& fv = std::get<std::vector<double>>(arg);
  TASKLETS_ASSIGN_OR_RETURN(auto h,
                            alloc_array(static_cast<std::int64_t>(fv.size())));
  auto& cells = heap_[h];
  for (std::size_t i = 0; i < fv.size(); ++i) {
    cells[i] = Value::from_float(fv[i]);
  }
  return Value::from_array(h);
}

// GCC 12 flow analysis loses track of the variant alternative when the
// vector branches are inlined into Result<HostArg>'s move path and flags the
// inactive alternative's vector members as maybe-uninitialized (at -O2 and
// under -fsanitize). False positive; silenced locally for -Werror builds.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Result<HostArg> Machine::value_to_host(Value v) const {
  switch (v.tag()) {
    case ValueTag::kInt:
      return HostArg{v.as_int()};
    case ValueTag::kFloat:
      return HostArg{v.as_float()};
    case ValueTag::kArray: {
      const auto& cells = heap_[v.as_array()];
      // Classify: all-int -> int array, otherwise all elements must be
      // numeric and are widened to double. Nested arrays cannot cross the
      // host boundary.
      bool all_int = true;
      for (const Value& c : cells) {
        if (c.is_array()) {
          return make_error(StatusCode::kAborted,
                            "nested array cannot be returned to host");
        }
        if (!c.is_int()) all_int = false;
      }
      if (all_int) {
        std::vector<std::int64_t> out;
        out.reserve(cells.size());
        for (const Value& c : cells) out.push_back(c.as_int());
        return HostArg{std::move(out)};
      }
      std::vector<double> out;
      out.reserve(cells.size());
      for (const Value& c : cells) out.push_back(c.to_double());
      return HostArg{std::move(out)};
    }
  }
  return make_error(StatusCode::kInternal, "corrupt value tag");
}
#pragma GCC diagnostic pop

Status Machine::step_profiled() {
  const OpCode op = frames_.back().fn->code[frames_.back().ip].op;
  const auto begin = std::chrono::steady_clock::now();
  const Status status = step();
  const auto end = std::chrono::steady_clock::now();
  ExecProfile::OpEntry& entry = profile_->ops[static_cast<std::size_t>(op)];
  ++entry.count;
  entry.nanos += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - begin).count());
  ++profile_->instructions;
  return status;
}

Status Machine::step() {
  Frame& frame = frames_.back();
  const Instr instr = frame.fn->code[frame.ip++];

  ++instructions_;
  ++fuel_used_;
  if (fuel_used_ > limits_.max_fuel) {
    return trap(StatusCode::kDeadlineExceeded, "fuel exhausted");
  }
  if (stack_.size() >= limits_.max_operand_stack) {
    return trap(StatusCode::kResourceExhausted, "operand stack limit");
  }

  switch (instr.op) {
    case OpCode::kNop:
      break;
    case OpCode::kPushInt:
      push(Value::from_int(instr.operand));
      break;
    case OpCode::kPushFloat:
      push(Value::from_float(
          std::bit_cast<double>(static_cast<std::uint64_t>(instr.operand))));
      break;
    case OpCode::kPop:
      pop();
      break;
    case OpCode::kDup:
      push(top());
      break;
    case OpCode::kSwap: {
      Value b = pop();
      Value a = pop();
      push(b);
      push(a);
      break;
    }
    case OpCode::kLoadLocal:
      push(locals_[frame.locals_base + static_cast<std::size_t>(instr.operand)]);
      break;
    case OpCode::kStoreLocal:
      locals_[frame.locals_base + static_cast<std::size_t>(instr.operand)] = pop();
      break;

#define TASKLETS_BIN_INT(name, expr)                 \
  case OpCode::name: {                               \
    std::int64_t b, a;                               \
    TASKLETS_RETURN_IF_ERROR(pop_int(b));            \
    TASKLETS_RETURN_IF_ERROR(pop_int(a));            \
    push(Value::from_int(expr));                     \
    break;                                           \
  }

    TASKLETS_BIN_INT(kAddInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b)))
    TASKLETS_BIN_INT(kSubInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) - static_cast<std::uint64_t>(b)))
    TASKLETS_BIN_INT(kMulInt, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)))
    TASKLETS_BIN_INT(kBitAnd, a & b)
    TASKLETS_BIN_INT(kBitOr, a | b)
    TASKLETS_BIN_INT(kBitXor, a ^ b)
    TASKLETS_BIN_INT(kShl, static_cast<std::int64_t>(
        static_cast<std::uint64_t>(a) << (static_cast<std::uint64_t>(b) & 63)))
    TASKLETS_BIN_INT(kShr, a >> (static_cast<std::uint64_t>(b) & 63))
    TASKLETS_BIN_INT(kCmpEqInt, a == b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpNeInt, a != b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpLtInt, a < b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpLeInt, a <= b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpGtInt, a > b ? 1 : 0)
    TASKLETS_BIN_INT(kCmpGeInt, a >= b ? 1 : 0)
#undef TASKLETS_BIN_INT

    case OpCode::kDivInt: {
      std::int64_t b, a;
      TASKLETS_RETURN_IF_ERROR(pop_int(b));
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      if (b == 0) return trap(StatusCode::kAborted, "integer division by zero");
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
        return trap(StatusCode::kAborted, "integer division overflow");
      }
      push(Value::from_int(a / b));
      break;
    }
    case OpCode::kModInt: {
      std::int64_t b, a;
      TASKLETS_RETURN_IF_ERROR(pop_int(b));
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      if (b == 0) return trap(StatusCode::kAborted, "integer modulo by zero");
      if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
        push(Value::from_int(0));
      } else {
        push(Value::from_int(a % b));
      }
      break;
    }
    case OpCode::kNegInt: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      push(Value::from_int(static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(a))));
      break;
    }

#define TASKLETS_BIN_FLOAT(name, expr)               \
  case OpCode::name: {                               \
    double b, a;                                     \
    TASKLETS_RETURN_IF_ERROR(pop_float(b));          \
    TASKLETS_RETURN_IF_ERROR(pop_float(a));          \
    push(expr);                                      \
    break;                                           \
  }

    TASKLETS_BIN_FLOAT(kAddFloat, Value::from_float(a + b))
    TASKLETS_BIN_FLOAT(kSubFloat, Value::from_float(a - b))
    TASKLETS_BIN_FLOAT(kMulFloat, Value::from_float(a * b))
    TASKLETS_BIN_FLOAT(kDivFloat, Value::from_float(a / b))
    TASKLETS_BIN_FLOAT(kCmpEqFloat, Value::from_int(a == b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpNeFloat, Value::from_int(a != b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpLtFloat, Value::from_int(a < b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpLeFloat, Value::from_int(a <= b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpGtFloat, Value::from_int(a > b ? 1 : 0))
    TASKLETS_BIN_FLOAT(kCmpGeFloat, Value::from_int(a >= b ? 1 : 0))
#undef TASKLETS_BIN_FLOAT

    case OpCode::kNegFloat: {
      double a;
      TASKLETS_RETURN_IF_ERROR(pop_float(a));
      push(Value::from_float(-a));
      break;
    }
    case OpCode::kLogicalNot: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      push(Value::from_int(a == 0 ? 1 : 0));
      break;
    }
    case OpCode::kIntToFloat: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      push(Value::from_float(static_cast<double>(a)));
      break;
    }
    case OpCode::kFloatToInt: {
      double a;
      TASKLETS_RETURN_IF_ERROR(pop_float(a));
      if (std::isnan(a) || a < -9.223372036854776e18 || a >= 9.223372036854776e18) {
        return trap(StatusCode::kAborted, "float to int out of range");
      }
      push(Value::from_int(static_cast<std::int64_t>(a)));
      break;
    }

    case OpCode::kJump:
      frame.ip = static_cast<std::size_t>(instr.operand);
      break;
    case OpCode::kJumpIfZero: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      if (a == 0) frame.ip = static_cast<std::size_t>(instr.operand);
      break;
    }
    case OpCode::kJumpIfNotZero: {
      std::int64_t a;
      TASKLETS_RETURN_IF_ERROR(pop_int(a));
      if (a != 0) frame.ip = static_cast<std::size_t>(instr.operand);
      break;
    }

    case OpCode::kCall:
      // Calls cost extra fuel: frame setup dominates a single opcode.
      fuel_used_ += 3;
      return enter(static_cast<std::uint32_t>(instr.operand),
                   /*from_host=*/false, nullptr);
    case OpCode::kReturn:
      return do_return();
    case OpCode::kHalt:
      // Stops the whole machine (even inside a nested call); the value on
      // top of the stack becomes the program result.
      halted_ = true;
      break;

    case OpCode::kNewArray: {
      std::int64_t len;
      TASKLETS_RETURN_IF_ERROR(pop_int(len));
      // Zero-filling large arrays is real work; charge proportionally.
      fuel_used_ += static_cast<std::uint64_t>(len < 0 ? 0 : len) / 4;
      TASKLETS_ASSIGN_OR_RETURN(auto h, alloc_array(len));
      push(Value::from_array(h));
      break;
    }
    case OpCode::kArrayLoad: {
      std::int64_t idx;
      ArrayHandle h;
      TASKLETS_RETURN_IF_ERROR(pop_int(idx));
      TASKLETS_RETURN_IF_ERROR(pop_array(h));
      const auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return trap(StatusCode::kAborted, "array index out of bounds");
      }
      push(cells[static_cast<std::size_t>(idx)]);
      break;
    }
    case OpCode::kArrayStore: {
      const Value value = pop();
      std::int64_t idx;
      ArrayHandle h;
      TASKLETS_RETURN_IF_ERROR(pop_int(idx));
      TASKLETS_RETURN_IF_ERROR(pop_array(h));
      auto& cells = heap_[h];
      if (idx < 0 || static_cast<std::size_t>(idx) >= cells.size()) {
        return trap(StatusCode::kAborted, "array index out of bounds");
      }
      cells[static_cast<std::size_t>(idx)] = value;
      break;
    }
    case OpCode::kArrayLen: {
      ArrayHandle h;
      TASKLETS_RETURN_IF_ERROR(pop_array(h));
      push(Value::from_int(static_cast<std::int64_t>(heap_[h].size())));
      break;
    }

    case OpCode::kIntrinsic: {
      fuel_used_ += 4;  // libm calls are pricier than simple ALU ops
      const auto id = static_cast<Intrinsic>(instr.operand);
      const IntrinsicInfo& info = intrinsic_info(id);
      if (info.float_args) {
        double y = 0.0, x;
        if (info.arity == 2) TASKLETS_RETURN_IF_ERROR(pop_float(y));
        TASKLETS_RETURN_IF_ERROR(pop_float(x));
        double r = 0.0;
        switch (id) {
          case Intrinsic::kSqrt: r = std::sqrt(x); break;
          case Intrinsic::kSin: r = std::sin(x); break;
          case Intrinsic::kCos: r = std::cos(x); break;
          case Intrinsic::kTan: r = std::tan(x); break;
          case Intrinsic::kExp: r = std::exp(x); break;
          case Intrinsic::kLog: r = std::log(x); break;
          case Intrinsic::kFloor: r = std::floor(x); break;
          case Intrinsic::kCeil: r = std::ceil(x); break;
          case Intrinsic::kRound: r = std::round(x); break;
          case Intrinsic::kAbsFloat: r = std::fabs(x); break;
          case Intrinsic::kPow: r = std::pow(x, y); break;
          case Intrinsic::kAtan2: r = std::atan2(x, y); break;
          case Intrinsic::kMinFloat: r = std::fmin(x, y); break;
          case Intrinsic::kMaxFloat: r = std::fmax(x, y); break;
          default:
            return trap(StatusCode::kInternal, "intrinsic dispatch mismatch");
        }
        push(Value::from_float(r));
      } else {
        std::int64_t y = 0, x;
        if (info.arity == 2) TASKLETS_RETURN_IF_ERROR(pop_int(y));
        TASKLETS_RETURN_IF_ERROR(pop_int(x));
        std::int64_t r = 0;
        switch (id) {
          case Intrinsic::kAbsInt:
            r = x < 0 ? static_cast<std::int64_t>(0 - static_cast<std::uint64_t>(x)) : x;
            break;
          case Intrinsic::kMinInt: r = std::min(x, y); break;
          case Intrinsic::kMaxInt: r = std::max(x, y); break;
          default:
            return trap(StatusCode::kInternal, "intrinsic dispatch mismatch");
        }
        push(Value::from_int(r));
      }
      break;
    }
  }
  return Status::ok();
}

Status Machine::start(const std::vector<HostArg>& args) {
  stack_.reserve(256);
  locals_.reserve(256);
  frames_.reserve(16);
  return enter(program_.entry(), /*from_host=*/true, &args);
}

Result<ExecOutcome> Machine::run(const std::vector<HostArg>& args) {
  TASKLETS_RETURN_IF_ERROR(start(args));
  while (!halted_) {
    TASKLETS_RETURN_IF_ERROR(advance());
  }
  ExecOutcome outcome;
  TASKLETS_ASSIGN_OR_RETURN(outcome.result, value_to_host(pop()));
  outcome.fuel_used = fuel_used_;
  outcome.instructions = instructions_;
  outcome.peak_call_depth = peak_depth_;
  return outcome;
}

Result<SliceOutcome> Machine::run_slice(std::uint64_t fuel_slice) {
  const std::uint64_t target =
      fuel_slice == 0 ? std::numeric_limits<std::uint64_t>::max()
                      : fuel_used_ + fuel_slice;
  while (!halted_) {
    if (fuel_used_ >= target) {
      Suspension suspension;
      suspension.state = snapshot();
      suspension.fuel_used = fuel_used_;
      suspension.instructions = instructions_;
      return SliceOutcome{std::move(suspension)};
    }
    TASKLETS_RETURN_IF_ERROR(advance());
  }
  ExecOutcome outcome;
  TASKLETS_ASSIGN_OR_RETURN(outcome.result, value_to_host(pop()));
  outcome.fuel_used = fuel_used_;
  outcome.instructions = instructions_;
  outcome.peak_call_depth = peak_depth_;
  return SliceOutcome{std::move(outcome)};
}

// --- snapshot encoding ("TSNP") ----------------------------------------------

namespace snapshot_format {
constexpr std::uint32_t kMagic = 0x54534E50;  // "TSNP"
constexpr std::uint16_t kVersion = 1;
}  // namespace snapshot_format

namespace {
void encode_value(ByteWriter& w, const Value& v) {
  w.write_u8(static_cast<std::uint8_t>(v.tag()));
  switch (v.tag()) {
    case ValueTag::kInt: w.write_varint_signed(v.as_int()); break;
    case ValueTag::kFloat: w.write_f64(v.as_float()); break;
    case ValueTag::kArray: w.write_u32(v.as_array()); break;
  }
}

Result<Value> decode_value(ByteReader& r) {
  TASKLETS_ASSIGN_OR_RETURN(auto tag, r.read_u8());
  switch (static_cast<ValueTag>(tag)) {
    case ValueTag::kInt: {
      TASKLETS_ASSIGN_OR_RETURN(auto v, r.read_varint_signed());
      return Value::from_int(v);
    }
    case ValueTag::kFloat: {
      TASKLETS_ASSIGN_OR_RETURN(auto v, r.read_f64());
      return Value::from_float(v);
    }
    case ValueTag::kArray: {
      TASKLETS_ASSIGN_OR_RETURN(auto v, r.read_u32());
      return Value::from_array(v);
    }
  }
  return make_error(StatusCode::kDataLoss, "bad value tag in snapshot");
}
}  // namespace

Bytes Machine::snapshot() const {
  ByteWriter w;
  w.write_u32(snapshot_format::kMagic);
  w.write_u16(snapshot_format::kVersion);
  w.write_u64(program_.content_hash());
  w.write_varint(fuel_used_);
  w.write_varint(peak_depth_);
  w.write_varint(stack_.size());
  for (const Value& v : stack_) encode_value(w, v);
  w.write_varint(locals_.size());
  for (const Value& v : locals_) encode_value(w, v);
  w.write_varint(frames_.size());
  for (const Frame& frame : frames_) {
    // Function identity travels as an index (pointers are host-local).
    std::uint32_t fn_idx = 0;
    for (std::uint32_t i = 0; i < program_.function_count(); ++i) {
      if (&program_.function(i) == frame.fn) {
        fn_idx = i;
        break;
      }
    }
    w.write_varint(fn_idx);
    w.write_varint(frame.ip);
    w.write_varint(frame.locals_base);
  }
  w.write_varint(heap_.size());
  for (const auto& cells : heap_) {
    w.write_varint(cells.size());
    for (const Value& v : cells) encode_value(w, v);
  }
  return std::move(w).take();
}

Status Machine::restore(std::span<const std::byte> snapshot_bytes) {
  ByteReader r(snapshot_bytes);
  TASKLETS_ASSIGN_OR_RETURN(auto magic, r.read_u32());
  if (magic != snapshot_format::kMagic) {
    return make_error(StatusCode::kDataLoss, "bad snapshot magic");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto version, r.read_u16());
  if (version != snapshot_format::kVersion) {
    return make_error(StatusCode::kDataLoss, "unsupported snapshot version");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto hash, r.read_u64());
  if (hash != program_.content_hash()) {
    return make_error(StatusCode::kFailedPrecondition,
                      "snapshot belongs to a different program");
  }
  TASKLETS_ASSIGN_OR_RETURN(fuel_used_, r.read_varint());
  if (fuel_used_ > limits_.max_fuel) {
    return make_error(StatusCode::kInvalidArgument, "snapshot exceeds fuel limit");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto peak, r.read_varint());
  peak_depth_ = static_cast<std::uint32_t>(peak);

  TASKLETS_ASSIGN_OR_RETURN(auto stack_size, r.read_varint());
  if (stack_size > limits_.max_operand_stack) {
    return make_error(StatusCode::kInvalidArgument, "snapshot stack too deep");
  }
  stack_.clear();
  stack_.reserve(stack_size);
  for (std::uint64_t i = 0; i < stack_size; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto v, decode_value(r));
    stack_.push_back(v);
  }
  TASKLETS_ASSIGN_OR_RETURN(auto locals_size, r.read_varint());
  if (locals_size > limits_.max_operand_stack) {
    return make_error(StatusCode::kInvalidArgument, "snapshot locals too large");
  }
  locals_.clear();
  locals_.reserve(locals_size);
  for (std::uint64_t i = 0; i < locals_size; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto v, decode_value(r));
    locals_.push_back(v);
  }

  TASKLETS_ASSIGN_OR_RETURN(auto frame_count, r.read_varint());
  if (frame_count == 0 || frame_count > limits_.max_call_depth) {
    return make_error(StatusCode::kInvalidArgument, "snapshot frame count invalid");
  }
  frames_.clear();
  std::vector<std::pair<std::uint32_t, std::size_t>> frame_meta;  // (fn, ip)
  std::size_t expected_base = 0;
  for (std::uint64_t i = 0; i < frame_count; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto fn_idx, r.read_varint());
    TASKLETS_ASSIGN_OR_RETURN(auto ip, r.read_varint());
    TASKLETS_ASSIGN_OR_RETURN(auto locals_base, r.read_varint());
    if (fn_idx >= program_.function_count()) {
      return make_error(StatusCode::kInvalidArgument, "snapshot frame function");
    }
    const Function& fn = program_.function(static_cast<std::uint32_t>(fn_idx));
    if (ip >= fn.code.size()) {
      return make_error(StatusCode::kInvalidArgument, "snapshot frame ip");
    }
    if (locals_base != expected_base) {
      return make_error(StatusCode::kInvalidArgument, "snapshot locals layout");
    }
    expected_base += fn.num_locals;
    Frame frame;
    frame.fn = &fn;
    frame.ip = static_cast<std::size_t>(ip);
    frame.locals_base = static_cast<std::size_t>(locals_base);
    frames_.push_back(frame);
    frame_meta.emplace_back(static_cast<std::uint32_t>(fn_idx),
                            static_cast<std::size_t>(ip));
  }
  if (expected_base != locals_.size()) {
    return make_error(StatusCode::kInvalidArgument, "snapshot locals size");
  }

  TASKLETS_ASSIGN_OR_RETURN(auto heap_count, r.read_varint());
  heap_.clear();
  heap_cells_ = 0;
  for (std::uint64_t i = 0; i < heap_count; ++i) {
    TASKLETS_ASSIGN_OR_RETURN(auto len, r.read_varint());
    heap_cells_ += len;
    if (heap_cells_ > limits_.max_heap_cells) {
      return make_error(StatusCode::kInvalidArgument, "snapshot heap too large");
    }
    std::vector<Value> cells;
    cells.reserve(len);
    for (std::uint64_t c = 0; c < len; ++c) {
      TASKLETS_ASSIGN_OR_RETURN(auto v, decode_value(r));
      cells.push_back(v);
    }
    heap_.push_back(std::move(cells));
  }
  if (!r.exhausted()) {
    return make_error(StatusCode::kDataLoss, "trailing bytes in snapshot");
  }

  // Every array handle anywhere in the state must point into the heap.
  auto handles_valid = [&](const std::vector<Value>& values) {
    for (const Value& v : values) {
      if (v.is_array() && v.as_array() >= heap_.size()) return false;
    }
    return true;
  };
  if (!handles_valid(stack_) || !handles_valid(locals_)) {
    return make_error(StatusCode::kInvalidArgument, "snapshot array handle");
  }
  for (const auto& cells : heap_) {
    if (!handles_valid(cells)) {
      return make_error(StatusCode::kInvalidArgument, "snapshot array handle");
    }
  }

  // Call-chain consistency: each suspended caller must sit immediately after
  // a kCall to the next frame's function.
  for (std::size_t i = 0; i + 1 < frame_meta.size(); ++i) {
    const Function& fn = program_.function(frame_meta[i].first);
    const std::size_t ip = frame_meta[i].second;
    if (ip == 0 || fn.code[ip - 1].op != OpCode::kCall ||
        fn.code[ip - 1].operand !=
            static_cast<std::int64_t>(frame_meta[i + 1].first)) {
      return make_error(StatusCode::kInvalidArgument, "snapshot call chain");
    }
  }

  // Operand-stack depth proven against the verifier's depth map: callers
  // contribute their depth after the call minus the pending result; the top
  // frame contributes its depth before the next instruction.
  TASKLETS_ASSIGN_OR_RETURN(auto depth_map, stack_depth_map(program_));
  std::int64_t expected_depth = 0;
  for (std::size_t i = 0; i < frame_meta.size(); ++i) {
    const auto [fn_idx, ip] = frame_meta[i];
    const int depth = depth_map[fn_idx][ip];
    if (depth < 0) {
      return make_error(StatusCode::kInvalidArgument,
                        "snapshot ip at unreachable instruction");
    }
    expected_depth += i + 1 < frame_meta.size() ? depth - 1 : depth;
  }
  if (expected_depth < 0 ||
      static_cast<std::size_t>(expected_depth) != stack_.size()) {
    return make_error(StatusCode::kInvalidArgument, "snapshot stack depth");
  }
  halted_ = false;
  return Status::ok();
}

}  // namespace

void ExecProfile::merge(const ExecProfile& other) noexcept {
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].count += other.ops[i].count;
    ops[i].nanos += other.ops[i].nanos;
  }
  instructions += other.instructions;
}

std::string ExecProfile::to_string() const {
  // Opcodes hit, heaviest total time first.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].count > 0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return ops[a].nanos != ops[b].nanos ? ops[a].nanos > ops[b].nanos
                                        : ops[a].count > ops[b].count;
  });
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof buf, "%-14s %12s %12s %8s\n", "opcode", "count",
                "total_ns", "avg_ns");
  out += buf;
  for (const std::size_t i : order) {
    const double avg =
        static_cast<double>(ops[i].nanos) / static_cast<double>(ops[i].count);
    std::snprintf(buf, sizeof buf, "%-14s %12llu %12llu %8.1f\n",
                  std::string(op_info(static_cast<OpCode>(i)).name).c_str(),
                  static_cast<unsigned long long>(ops[i].count),
                  static_cast<unsigned long long>(ops[i].nanos), avg);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, "instructions   %12llu\n",
                static_cast<unsigned long long>(instructions));
  out += buf;
  return out;
}

Result<ExecOutcome> execute(const Program& program,
                            const std::vector<HostArg>& args,
                            const ExecLimits& limits, ExecProfile* profile) {
  Machine machine(program, limits);
  machine.set_profile(profile);
  return machine.run(args);
}

Result<ExecOutcome> verify_and_execute(const Program& program,
                                       const std::vector<HostArg>& args,
                                       const ExecLimits& limits,
                                       ExecProfile* profile) {
  TASKLETS_RETURN_IF_ERROR(verify(program));
  return execute(program, args, limits, profile);
}

Result<SliceOutcome> execute_slice(const Program& program,
                                   const std::vector<HostArg>& args,
                                   const ExecLimits& limits,
                                   std::uint64_t fuel_slice,
                                   ExecProfile* profile) {
  Machine machine(program, limits);
  machine.set_profile(profile);
  TASKLETS_RETURN_IF_ERROR(machine.start(args));
  return machine.run_slice(fuel_slice);
}

Result<std::uint64_t> snapshot_fuel(std::span<const std::byte> state) {
  ByteReader r(state);
  TASKLETS_ASSIGN_OR_RETURN(auto magic, r.read_u32());
  if (magic != snapshot_format::kMagic) {
    return make_error(StatusCode::kDataLoss, "bad snapshot magic");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto version, r.read_u16());
  if (version != snapshot_format::kVersion) {
    return make_error(StatusCode::kDataLoss, "unsupported snapshot version");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto hash, r.read_u64());
  (void)hash;
  return r.read_varint();
}

Result<SliceOutcome> resume_slice(const Program& program,
                                  const Suspension& suspension,
                                  const ExecLimits& limits,
                                  std::uint64_t fuel_slice,
                                  ExecProfile* profile) {
  Machine machine(program, limits);
  machine.set_profile(profile);
  TASKLETS_RETURN_IF_ERROR(machine.restore(std::span<const std::byte>(
      suspension.state.data(), suspension.state.size())));
  machine.set_instructions(suspension.instructions);
  return machine.run_slice(fuel_slice);
}

}  // namespace tasklets::tvm

#include "tvm/opcode.hpp"

#include <array>

namespace tasklets::tvm {

namespace {

constexpr std::array<OpInfo, kNumOpCodes> kOpTable = {{
    {"nop", false, 0, 0},
    {"push_i", true, 0, 1},
    {"push_f", true, 0, 1},
    {"pop", false, 1, 0},
    {"dup", false, 1, 2},
    {"swap", false, 2, 2},
    {"load", true, 0, 1},
    {"store", true, 1, 0},
    {"add_i", false, 2, 1},
    {"sub_i", false, 2, 1},
    {"mul_i", false, 2, 1},
    {"div_i", false, 2, 1},
    {"mod_i", false, 2, 1},
    {"neg_i", false, 1, 1},
    {"add_f", false, 2, 1},
    {"sub_f", false, 2, 1},
    {"mul_f", false, 2, 1},
    {"div_f", false, 2, 1},
    {"neg_f", false, 1, 1},
    {"band", false, 2, 1},
    {"bor", false, 2, 1},
    {"bxor", false, 2, 1},
    {"shl", false, 2, 1},
    {"shr", false, 2, 1},
    {"ceq_i", false, 2, 1},
    {"cne_i", false, 2, 1},
    {"clt_i", false, 2, 1},
    {"cle_i", false, 2, 1},
    {"cgt_i", false, 2, 1},
    {"cge_i", false, 2, 1},
    {"ceq_f", false, 2, 1},
    {"cne_f", false, 2, 1},
    {"clt_f", false, 2, 1},
    {"cle_f", false, 2, 1},
    {"cgt_f", false, 2, 1},
    {"cge_f", false, 2, 1},
    {"not", false, 1, 1},
    {"i2f", false, 1, 1},
    {"f2i", false, 1, 1},
    {"jmp", true, 0, 0},
    {"jz", true, 1, 0},
    {"jnz", true, 1, 0},
    {"call", true, -1, 1},
    {"ret", false, 1, 0},
    {"newarr", false, 1, 1},
    {"aload", false, 2, 1},
    {"astore", false, 3, 0},
    {"alen", false, 1, 1},
    {"intrin", true, -1, 1},
    {"halt", false, 1, 0},
}};

constexpr std::array<IntrinsicInfo, kNumIntrinsics> kIntrinsicTable = {{
    {"sqrt", 1, true},
    {"sin", 1, true},
    {"cos", 1, true},
    {"tan", 1, true},
    {"exp", 1, true},
    {"log", 1, true},
    {"floor", 1, true},
    {"ceil", 1, true},
    {"round", 1, true},
    {"fabs", 1, true},
    {"pow", 2, true},
    {"atan2", 2, true},
    {"iabs", 1, false},
    {"imin", 2, false},
    {"imax", 2, false},
    {"fmin", 2, true},
    {"fmax", 2, true},
}};

constexpr std::array<std::string_view,
                     kNumVmOps - kNumOpCodes> kQuickNames = {{
#define TASKLETS_OP_NAME(name) #name,
    TASKLETS_QUICKENED_OPS(TASKLETS_OP_NAME)
#undef TASKLETS_OP_NAME
}};

// TASKLETS_BASE_OPS must mirror the OpCode enum value-for-value: the fast
// engine indexes its dispatch table with the raw opcode byte.
constexpr std::array kBaseOpOrder = {
#define TASKLETS_OP_VALUE(name) OpCode::name,
    TASKLETS_BASE_OPS(TASKLETS_OP_VALUE)
#undef TASKLETS_OP_VALUE
};
static_assert(kBaseOpOrder.size() == kNumOpCodes,
              "TASKLETS_BASE_OPS is missing opcodes");
constexpr bool base_ops_in_enum_order() {
  for (std::size_t i = 0; i < kBaseOpOrder.size(); ++i) {
    if (kBaseOpOrder[i] != static_cast<OpCode>(i)) return false;
  }
  return true;
}
static_assert(base_ops_in_enum_order(),
              "TASKLETS_BASE_OPS is out of order w.r.t. the OpCode enum");
static_assert(static_cast<std::uint8_t>(OpCode::kAddIntU) == kNumOpCodes,
              "quickened opcodes must start right after kHalt");

}  // namespace

std::string_view vm_op_name(OpCode op) noexcept {
  const auto idx = static_cast<std::size_t>(op);
  if (idx < kNumOpCodes) return kOpTable[idx].name;
  if (idx < kNumVmOps) return kQuickNames[idx - kNumOpCodes];
  return "?";
}

const OpInfo& op_info(OpCode op) noexcept {
  return kOpTable[static_cast<std::size_t>(op)];
}

std::optional<OpCode> opcode_by_name(std::string_view mnemonic) noexcept {
  for (std::size_t i = 0; i < kOpTable.size(); ++i) {
    if (kOpTable[i].name == mnemonic) return static_cast<OpCode>(i);
  }
  return std::nullopt;
}

const IntrinsicInfo& intrinsic_info(Intrinsic id) noexcept {
  return kIntrinsicTable[static_cast<std::size_t>(id)];
}

std::optional<Intrinsic> intrinsic_by_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kIntrinsicTable.size(); ++i) {
    if (kIntrinsicTable[i].name == name) return static_cast<Intrinsic>(i);
  }
  return std::nullopt;
}

}  // namespace tasklets::tvm

#include "tvm/program.hpp"

namespace tasklets::tvm {

namespace {
constexpr std::uint32_t kMagic = 0x54564D31;  // "TVM1"
constexpr std::uint16_t kVersion = 1;
// Container-level sanity bounds; semantic limits live in the Verifier.
constexpr std::uint64_t kMaxFunctions = 4096;
constexpr std::uint64_t kMaxCodeLen = 1u << 20;
constexpr std::uint64_t kMaxLocals = 1u << 16;
}  // namespace

std::uint32_t Program::add_function(Function fn) {
  functions_.push_back(std::move(fn));
  return static_cast<std::uint32_t>(functions_.size() - 1);
}

Result<std::uint32_t> Program::find_function(std::string_view name) const {
  for (std::uint32_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name == name) return i;
  }
  return make_error(StatusCode::kNotFound,
                    "no function named '" + std::string(name) + "'");
}

std::size_t Program::instruction_count() const noexcept {
  std::size_t n = 0;
  for (const auto& fn : functions_) n += fn.code.size();
  return n;
}

Bytes Program::serialize() const {
  ByteWriter w;
  w.write_u32(kMagic);
  w.write_u16(kVersion);
  w.write_varint(entry_);
  w.write_varint(functions_.size());
  for (const auto& fn : functions_) {
    w.write_string(fn.name);
    w.write_varint(fn.arity);
    w.write_varint(fn.num_locals);
    w.write_varint(fn.code.size());
    for (const auto& instr : fn.code) {
      w.write_u8(static_cast<std::uint8_t>(instr.op));
      if (op_info(instr.op).has_operand) {
        w.write_varint_signed(instr.operand);
      }
    }
  }
  return std::move(w).take();
}

Result<Program> Program::deserialize(std::span<const std::byte> data) {
  ByteReader r(data);
  TASKLETS_ASSIGN_OR_RETURN(auto magic, r.read_u32());
  if (magic != kMagic) {
    return make_error(StatusCode::kDataLoss, "bad bytecode magic");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto version, r.read_u16());
  if (version != kVersion) {
    return make_error(StatusCode::kDataLoss, "unsupported bytecode version");
  }
  Program program;
  TASKLETS_ASSIGN_OR_RETURN(auto entry, r.read_varint());
  TASKLETS_ASSIGN_OR_RETURN(auto num_functions, r.read_varint());
  if (num_functions > kMaxFunctions) {
    return make_error(StatusCode::kDataLoss, "function count exceeds limit");
  }
  for (std::uint64_t f = 0; f < num_functions; ++f) {
    Function fn;
    TASKLETS_ASSIGN_OR_RETURN(fn.name, r.read_string());
    TASKLETS_ASSIGN_OR_RETURN(auto arity, r.read_varint());
    TASKLETS_ASSIGN_OR_RETURN(auto num_locals, r.read_varint());
    if (num_locals > kMaxLocals || arity > num_locals) {
      return make_error(StatusCode::kDataLoss, "invalid locals layout");
    }
    fn.arity = static_cast<std::uint32_t>(arity);
    fn.num_locals = static_cast<std::uint32_t>(num_locals);
    TASKLETS_ASSIGN_OR_RETURN(auto code_len, r.read_varint());
    if (code_len > kMaxCodeLen) {
      return make_error(StatusCode::kDataLoss, "code length exceeds limit");
    }
    fn.code.reserve(code_len);
    for (std::uint64_t i = 0; i < code_len; ++i) {
      TASKLETS_ASSIGN_OR_RETURN(auto op_byte, r.read_u8());
      if (op_byte >= kNumOpCodes) {
        return make_error(StatusCode::kDataLoss, "unknown opcode");
      }
      Instr instr;
      instr.op = static_cast<OpCode>(op_byte);
      if (op_info(instr.op).has_operand) {
        TASKLETS_ASSIGN_OR_RETURN(instr.operand, r.read_varint_signed());
      }
      fn.code.push_back(instr);
    }
    program.add_function(std::move(fn));
  }
  if (entry >= num_functions) {
    return make_error(StatusCode::kDataLoss, "entry index out of range");
  }
  program.set_entry(static_cast<std::uint32_t>(entry));
  if (!r.exhausted()) {
    return make_error(StatusCode::kDataLoss, "trailing bytes after program");
  }
  return program;
}

bool ExecPlan::compatible_with(const Program& program) const noexcept {
  if (functions.size() != program.function_count()) return false;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    const std::size_t code_len = program.functions()[i].code.size();
    if (functions[i].quick.size() != code_len ||
        functions[i].block_of.size() != code_len) {
      return false;
    }
  }
  return true;
}

std::uint64_t Program::content_hash() const {
  const Bytes encoded = serialize();
  return fnv1a(std::span<const std::byte>(encoded.data(), encoded.size()));
}

}  // namespace tasklets::tvm

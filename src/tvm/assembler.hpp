// Textual assembly for TVM bytecode.
//
// Format (one instruction per line, ';' starts a comment):
//
//   .func main arity=1 locals=3
//     load 0
//     push_i 2
//     clt_i
//     jz recurse          ; labels resolve to instruction indices
//     load 0
//     ret
//   recurse:
//     ...
//   .end
//   .entry main
//
// Operands: `jmp/jz/jnz` accept labels or absolute indices, `call` accepts a
// function name or index (forward references allowed), `intrin` accepts an
// intrinsic name, `push_f` accepts a float literal, `push_i` and the rest
// accept integers.
//
// Used by the test suite and by hand-written kernels; the TCL compiler emits
// Program objects directly.
#pragma once

#include <string>
#include <string_view>

#include "common/status.hpp"
#include "tvm/program.hpp"

namespace tasklets::tvm {

[[nodiscard]] Result<Program> assemble(std::string_view source);

// Round-trippable listing of a program (assemble(disassemble(p)) == p).
[[nodiscard]] std::string disassemble(const Program& program);

}  // namespace tasklets::tvm

// The TVM value model.
//
// A Value is a dynamically tagged 64-bit scalar (integer or float) or a
// reference to a heap-allocated array. Arrays live in a per-execution heap
// (see interpreter.hpp) and are addressed by handle, so values stay trivially
// copyable and the whole machine state is serializable.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace tasklets::tvm {

enum class ValueTag : std::uint8_t { kInt = 0, kFloat = 1, kArray = 2 };

[[nodiscard]] constexpr std::string_view to_string(ValueTag tag) noexcept {
  switch (tag) {
    case ValueTag::kInt: return "int";
    case ValueTag::kFloat: return "float";
    case ValueTag::kArray: return "array";
  }
  return "?";
}

// Handle into the execution heap. Index 0 is valid (first allocation).
using ArrayHandle = std::uint32_t;

class Value {
 public:
  constexpr Value() noexcept : tag_(ValueTag::kInt), int_(0) {}

  [[nodiscard]] static constexpr Value from_int(std::int64_t v) noexcept {
    Value out;
    out.tag_ = ValueTag::kInt;
    out.int_ = v;
    return out;
  }
  [[nodiscard]] static constexpr Value from_float(double v) noexcept {
    Value out;
    out.tag_ = ValueTag::kFloat;
    out.float_ = v;
    return out;
  }
  [[nodiscard]] static constexpr Value from_array(ArrayHandle h) noexcept {
    Value out;
    out.tag_ = ValueTag::kArray;
    out.array_ = h;
    return out;
  }

  [[nodiscard]] constexpr ValueTag tag() const noexcept { return tag_; }
  [[nodiscard]] constexpr bool is_int() const noexcept { return tag_ == ValueTag::kInt; }
  [[nodiscard]] constexpr bool is_float() const noexcept { return tag_ == ValueTag::kFloat; }
  [[nodiscard]] constexpr bool is_array() const noexcept { return tag_ == ValueTag::kArray; }

  // Unchecked accessors; the interpreter checks tags before calling.
  [[nodiscard]] constexpr std::int64_t as_int() const noexcept { return int_; }
  [[nodiscard]] constexpr double as_float() const noexcept { return float_; }
  [[nodiscard]] constexpr ArrayHandle as_array() const noexcept { return array_; }

  // Numeric coercion used by comparison and conversion opcodes.
  [[nodiscard]] constexpr double to_double() const noexcept {
    return is_float() ? float_ : static_cast<double>(int_);
  }

  // Structural equality: tags must match; floats compare bitwise-exact by
  // value (NaN != NaN, matching IEEE semantics used in programs).
  friend constexpr bool operator==(const Value& a, const Value& b) noexcept {
    if (a.tag_ != b.tag_) return false;
    switch (a.tag_) {
      case ValueTag::kInt: return a.int_ == b.int_;
      case ValueTag::kFloat: return a.float_ == b.float_;
      case ValueTag::kArray: return a.array_ == b.array_;
    }
    return false;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  ValueTag tag_;
  union {
    std::int64_t int_;
    double float_;
    ArrayHandle array_;
  };
};

static_assert(sizeof(Value) == 16, "Value should stay two words");

}  // namespace tasklets::tvm

// The portable bytecode container. A Program is the unit shipped from a
// consumer to a provider; it is fully self-contained (no external linkage)
// and has a stable binary encoding ("TVM1") so heterogeneous nodes agree on
// its meaning — this is the artifact that overcomes architecture and OS
// heterogeneity in the Tasklet system.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "tvm/opcode.hpp"

namespace tasklets::tvm {

struct Instr {
  OpCode op = OpCode::kNop;
  std::int64_t operand = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

struct Function {
  std::string name;
  std::uint32_t arity = 0;       // parameters occupy locals [0, arity)
  std::uint32_t num_locals = 0;  // total local slots, including parameters
  std::vector<Instr> code;

  friend bool operator==(const Function&, const Function&) = default;
};

class Program {
 public:
  Program() = default;

  // Adds a function, returning its index (used as the kCall operand).
  std::uint32_t add_function(Function fn);

  [[nodiscard]] const std::vector<Function>& functions() const noexcept {
    return functions_;
  }
  [[nodiscard]] const Function& function(std::uint32_t idx) const {
    return functions_.at(idx);
  }
  [[nodiscard]] std::size_t function_count() const noexcept {
    return functions_.size();
  }

  [[nodiscard]] Result<std::uint32_t> find_function(std::string_view name) const;

  void set_entry(std::uint32_t idx) noexcept { entry_ = idx; }
  [[nodiscard]] std::uint32_t entry() const noexcept { return entry_; }

  // Total instruction count across functions; a cheap size proxy used in
  // transfer-cost models.
  [[nodiscard]] std::size_t instruction_count() const noexcept;

  // Stable binary encoding. serialize() always succeeds; deserialize()
  // validates the container structure (magic, version, counts, opcode range)
  // but not semantic well-formedness — run the Verifier for that.
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Result<Program> deserialize(std::span<const std::byte> data);

  // Content hash over the serialized form: used as a cache key so providers
  // can skip re-verification of programs they have already seen.
  [[nodiscard]] std::uint64_t content_hash() const;

  friend bool operator==(const Program&, const Program&) = default;

 private:
  std::vector<Function> functions_;
  std::uint32_t entry_ = 0;
};

}  // namespace tasklets::tvm

// The portable bytecode container. A Program is the unit shipped from a
// consumer to a provider; it is fully self-contained (no external linkage)
// and has a stable binary encoding ("TVM1") so heterogeneous nodes agree on
// its meaning — this is the artifact that overcomes architecture and OS
// heterogeneity in the Tasklet system.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "tvm/opcode.hpp"

namespace tasklets::tvm {

struct Instr {
  OpCode op = OpCode::kNop;
  std::int64_t operand = 0;

  friend bool operator==(const Instr&, const Instr&) = default;
};

struct Function {
  std::string name;
  std::uint32_t arity = 0;       // parameters occupy locals [0, arity)
  std::uint32_t num_locals = 0;  // total local slots, including parameters
  std::vector<Instr> code;

  friend bool operator==(const Function&, const Function&) = default;
};

class Program {
 public:
  Program() = default;

  // Adds a function, returning its index (used as the kCall operand).
  std::uint32_t add_function(Function fn);

  [[nodiscard]] const std::vector<Function>& functions() const noexcept {
    return functions_;
  }
  [[nodiscard]] const Function& function(std::uint32_t idx) const {
    return functions_.at(idx);
  }
  [[nodiscard]] std::size_t function_count() const noexcept {
    return functions_.size();
  }

  [[nodiscard]] Result<std::uint32_t> find_function(std::string_view name) const;

  void set_entry(std::uint32_t idx) noexcept { entry_ = idx; }
  [[nodiscard]] std::uint32_t entry() const noexcept { return entry_; }

  // Total instruction count across functions; a cheap size proxy used in
  // transfer-cost models.
  [[nodiscard]] std::size_t instruction_count() const noexcept;

  // Stable binary encoding. serialize() always succeeds; deserialize()
  // validates the container structure (magic, version, counts, opcode range)
  // but not semantic well-formedness — run the Verifier for that.
  [[nodiscard]] Bytes serialize() const;
  [[nodiscard]] static Result<Program> deserialize(std::span<const std::byte> data);

  // Content hash over the serialized form: used as a cache key so providers
  // can skip re-verification of programs they have already seen.
  [[nodiscard]] std::uint64_t content_hash() const;

  friend bool operator==(const Program&, const Program&) = default;

 private:
  std::vector<Function> functions_;
  std::uint32_t entry_ = 0;
};

// --- Fast-path execution metadata --------------------------------------------
//
// Derived, host-local facts about a verified program, produced by
// verifier.hpp::analyze() and consumed by the interpreter's fast-path
// engine (interpreter.hpp). A plan never travels on the wire and does not
// participate in Program equality or content hashing: it is a cache of what
// the verifier proved, not part of the program's meaning.

// Static facts about one basic block.
struct BlockInfo {
  std::uint32_t begin = 0;  // first instruction (a leader)
  std::uint32_t end = 0;    // one past the terminator
  // Fuel charged by a full run of the block: 1 per instruction plus the
  // kCall (+3) and kIntrinsic (+4) surcharges. Excludes kNewArray's
  // data-dependent surcharge; see variable_fuel.
  std::uint64_t base_fuel = 0;
  // Worst-case operand-stack depth reached at any instruction boundary in
  // the block, relative to the depth at block entry. Lets the fast path
  // hoist the per-instruction stack-limit check to block entry.
  std::uint32_t max_depth = 0;
  // Block contains kNewArray, whose surcharge depends on the popped length:
  // fuel cannot be bounded statically, so the fast path runs the block
  // through the checked stepper.
  bool variable_fuel = false;
};

inline constexpr std::uint32_t kNoBlock = 0xFFFFFFFFu;

struct FunctionPlan {
  // Quickened copy of Function::code, index-aligned with the original so
  // ips, jump targets, trap sites and snapshots agree between engines.
  // Fused instructions occupy their window's first slot; the remaining
  // slots keep their original content but are skipped by the fast engine.
  std::vector<Instr> quick;
  std::vector<BlockInfo> blocks;
  // Instruction ip -> index into `blocks` (kNoBlock for unreachable code).
  std::vector<std::uint32_t> block_of;
};

// Per-function plans, index-aligned with Program::functions().
struct ExecPlan {
  std::vector<FunctionPlan> functions;

  // Structural sanity check that this plan was built from `program` (shape
  // only — function and code sizes; it does not re-run the analysis).
  [[nodiscard]] bool compatible_with(const Program& program) const noexcept;
};

}  // namespace tasklets::tvm

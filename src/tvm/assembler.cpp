#include "tvm/assembler.hpp"

#include <bit>
#include <cctype>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <vector>

namespace tasklets::tvm {

namespace {

// A named operand awaiting resolution: label within a function, or a call
// target resolved across the whole program.
struct Fixup {
  std::size_t function_ordinal;  // unused for jump fixups
  std::size_t instr_index;
  std::string symbol;
  std::size_t line;
};

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

Status parse_error(std::size_t line, std::string what) {
  return make_error(StatusCode::kInvalidArgument,
                    "asm line " + std::to_string(line) + ": " + std::move(what));
}

Result<std::int64_t> parse_int(std::string_view tok, std::size_t line) {
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), value);
  if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
    return parse_error(line, "bad integer '" + std::string(tok) + "'");
  }
  return value;
}

Result<double> parse_float(std::string_view tok, std::size_t line) {
  // from_chars<double> is not universally available; strtod on a copy is
  // portable and this is not a hot path.
  const std::string copy(tok);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    return parse_error(line, "bad float '" + copy + "'");
  }
  return value;
}

Result<std::uint32_t> parse_attr(std::string_view tok, std::string_view key,
                                 std::size_t line) {
  if (tok.substr(0, key.size()) != key || tok.size() <= key.size() ||
      tok[key.size()] != '=') {
    return parse_error(line, "expected " + std::string(key) + "=<n>");
  }
  TASKLETS_ASSIGN_OR_RETURN(auto v, parse_int(tok.substr(key.size() + 1), line));
  if (v < 0) return parse_error(line, std::string(key) + " must be >= 0");
  return static_cast<std::uint32_t>(v);
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < s.size() && s[i] != ' ' && s[i] != '\t') ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool looks_numeric(std::string_view tok) {
  return !tok.empty() &&
         (std::isdigit(static_cast<unsigned char>(tok[0])) != 0 ||
          tok[0] == '-' || tok[0] == '+' || tok[0] == '.');
}

}  // namespace

Result<Program> assemble(std::string_view source) {
  std::vector<Function> functions;
  std::map<std::string, std::uint32_t, std::less<>> function_index;
  std::vector<Fixup> call_fixups;  // resolved after all functions are parsed
  std::string entry_name;
  std::size_t entry_line = 0;

  Function current;
  bool in_function = false;
  std::map<std::string, std::size_t, std::less<>> labels;
  std::vector<Fixup> jump_fixups;  // resolved at .end of each function

  std::istringstream stream{std::string(source)};
  std::string raw_line;
  std::size_t line_no = 0;

  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (const auto comment = line.find(';'); comment != std::string_view::npos) {
      line = trim(line.substr(0, comment));
    }
    if (line.empty()) continue;

    if (line.starts_with(".func")) {
      if (in_function) return parse_error(line_no, "nested .func");
      const auto toks = split_ws(line);
      if (toks.size() != 4) {
        return parse_error(line_no, ".func <name> arity=<n> locals=<n>");
      }
      current = Function{};
      current.name = std::string(toks[1]);
      TASKLETS_ASSIGN_OR_RETURN(current.arity, parse_attr(toks[2], "arity", line_no));
      TASKLETS_ASSIGN_OR_RETURN(current.num_locals,
                                parse_attr(toks[3], "locals", line_no));
      if (current.num_locals < current.arity) current.num_locals = current.arity;
      labels.clear();
      jump_fixups.clear();
      in_function = true;
      continue;
    }
    if (line == ".end") {
      if (!in_function) return parse_error(line_no, ".end outside function");
      for (const auto& fx : jump_fixups) {
        const auto it = labels.find(fx.symbol);
        if (it == labels.end()) {
          return parse_error(fx.line, "undefined label '" + fx.symbol + "'");
        }
        current.code[fx.instr_index].operand = static_cast<std::int64_t>(it->second);
      }
      if (function_index.contains(current.name)) {
        return parse_error(line_no, "duplicate function '" + current.name + "'");
      }
      function_index.emplace(current.name,
                             static_cast<std::uint32_t>(functions.size()));
      functions.push_back(std::move(current));
      in_function = false;
      continue;
    }
    if (line.starts_with(".entry")) {
      const auto toks = split_ws(line);
      if (toks.size() != 2) return parse_error(line_no, ".entry <name>");
      entry_name = std::string(toks[1]);
      entry_line = line_no;
      continue;
    }
    if (!in_function) {
      return parse_error(line_no, "instruction outside .func");
    }
    if (line.ends_with(':')) {
      const std::string label(trim(line.substr(0, line.size() - 1)));
      if (label.empty()) return parse_error(line_no, "empty label");
      if (!labels.emplace(label, current.code.size()).second) {
        return parse_error(line_no, "duplicate label '" + label + "'");
      }
      continue;
    }

    const auto toks = split_ws(line);
    const auto opcode = opcode_by_name(toks[0]);
    if (!opcode) {
      return parse_error(line_no, "unknown mnemonic '" + std::string(toks[0]) + "'");
    }
    Instr instr;
    instr.op = *opcode;
    const bool needs_operand = op_info(*opcode).has_operand;
    if (needs_operand != (toks.size() == 2)) {
      return parse_error(line_no, needs_operand
                                      ? "'" + std::string(toks[0]) + "' needs an operand"
                                      : "'" + std::string(toks[0]) + "' takes no operand");
    }
    if (needs_operand) {
      const std::string_view operand = toks[1];
      switch (*opcode) {
        case OpCode::kPushFloat: {
          TASKLETS_ASSIGN_OR_RETURN(auto f, parse_float(operand, line_no));
          instr.operand = static_cast<std::int64_t>(std::bit_cast<std::uint64_t>(f));
          break;
        }
        case OpCode::kIntrinsic: {
          const auto id = intrinsic_by_name(operand);
          if (!id) {
            return parse_error(line_no,
                               "unknown intrinsic '" + std::string(operand) + "'");
          }
          instr.operand = static_cast<std::int64_t>(*id);
          break;
        }
        case OpCode::kCall:
          if (looks_numeric(operand)) {
            TASKLETS_ASSIGN_OR_RETURN(instr.operand, parse_int(operand, line_no));
          } else {
            call_fixups.push_back({functions.size(), current.code.size(),
                                   std::string(operand), line_no});
          }
          break;
        case OpCode::kJump:
        case OpCode::kJumpIfZero:
        case OpCode::kJumpIfNotZero:
          if (looks_numeric(operand)) {
            TASKLETS_ASSIGN_OR_RETURN(instr.operand, parse_int(operand, line_no));
          } else {
            jump_fixups.push_back(
                {functions.size(), current.code.size(), std::string(operand), line_no});
          }
          break;
        default:
          TASKLETS_ASSIGN_OR_RETURN(instr.operand, parse_int(operand, line_no));
          break;
      }
    }
    current.code.push_back(instr);
  }

  if (in_function) {
    return make_error(StatusCode::kInvalidArgument, "missing .end at EOF");
  }
  if (functions.empty()) {
    return make_error(StatusCode::kInvalidArgument, "no functions in source");
  }

  for (const auto& fx : call_fixups) {
    const auto it = function_index.find(fx.symbol);
    if (it == function_index.end()) {
      return parse_error(fx.line, "undefined function '" + fx.symbol + "'");
    }
    functions[fx.function_ordinal].code[fx.instr_index].operand = it->second;
  }

  if (entry_name.empty()) {
    return make_error(StatusCode::kInvalidArgument, "missing .entry directive");
  }
  const auto entry_it = function_index.find(entry_name);
  if (entry_it == function_index.end()) {
    return parse_error(entry_line, "entry function '" + entry_name + "' not defined");
  }

  Program program;
  for (auto& fn : functions) program.add_function(std::move(fn));
  program.set_entry(entry_it->second);
  return program;
}

std::string disassemble(const Program& program) {
  std::ostringstream out;
  for (std::uint32_t f = 0; f < program.function_count(); ++f) {
    const Function& fn = program.function(f);
    out << ".func " << fn.name << " arity=" << fn.arity
        << " locals=" << fn.num_locals << "\n";
    std::map<std::size_t, std::string> target_labels;
    for (const Instr& instr : fn.code) {
      if (instr.op == OpCode::kJump || instr.op == OpCode::kJumpIfZero ||
          instr.op == OpCode::kJumpIfNotZero) {
        const auto target = static_cast<std::size_t>(instr.operand);
        if (!target_labels.contains(target)) {
          target_labels.emplace(target, "L" + std::to_string(target_labels.size()));
        }
      }
    }
    for (std::size_t ip = 0; ip < fn.code.size(); ++ip) {
      if (const auto it = target_labels.find(ip); it != target_labels.end()) {
        out << it->second << ":\n";
      }
      const Instr& instr = fn.code[ip];
      const OpInfo& info = op_info(instr.op);
      out << "  " << info.name;
      if (info.has_operand) {
        switch (instr.op) {
          case OpCode::kPushFloat: {
            const double v =
                std::bit_cast<double>(static_cast<std::uint64_t>(instr.operand));
            char buf[40];
            std::snprintf(buf, sizeof buf, "%.17g", v);
            out << ' ' << buf;
            break;
          }
          case OpCode::kIntrinsic:
            out << ' '
                << intrinsic_info(static_cast<Intrinsic>(instr.operand)).name;
            break;
          case OpCode::kCall:
            out << ' '
                << program.function(static_cast<std::uint32_t>(instr.operand)).name;
            break;
          case OpCode::kJump:
          case OpCode::kJumpIfZero:
          case OpCode::kJumpIfNotZero:
            out << ' ' << target_labels.at(static_cast<std::size_t>(instr.operand));
            break;
          default:
            out << ' ' << instr.operand;
            break;
        }
      }
      out << '\n';
    }
    out << ".end\n";
  }
  out << ".entry " << program.function(program.entry()).name << '\n';
  return out.str();
}

}  // namespace tasklets::tvm

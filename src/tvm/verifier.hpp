// Static bytecode verification.
//
// Providers execute code authored by untrusted remote consumers, so every
// program is verified before first execution (results are cached by content
// hash). The verifier guarantees, per function:
//
//   * every operand index is in range (locals, jump targets, callees,
//     intrinsic ids),
//   * control flow cannot fall off the end of the code array,
//   * the operand stack never underflows, its depth at any instruction is
//     flow-independent (classic Java-style bytecode verification), and it
//     is exactly 1 at every `ret`/`halt`,
//   * the static stack depth stays under a fixed bound.
//
// Value *types* are checked dynamically by the interpreter; the verifier
// makes memory-safety violations unreachable, the interpreter turns type
// confusion into clean traps.
#pragma once

#include "common/status.hpp"
#include "tvm/program.hpp"

namespace tasklets::tvm {

struct VerifyLimits {
  std::uint32_t max_stack_depth = 1024;  // static operand-stack bound
};

[[nodiscard]] Status verify(const Program& program, const VerifyLimits& limits = {});

// Verification plus fast-path plan construction. Accepts exactly the
// programs verify() accepts, and additionally proves per-basic-block static
// facts the interpreter's fast-path engine hoists out of its hot loop:
//
//   * worst-case fuel of a full block run (so the per-instruction fuel
//     check moves to block entry),
//   * worst-case operand-stack depth relative to block entry (so the
//     per-instruction stack-limit check moves to block entry),
//   * operand tags where a forward dataflow over {int, float, array}
//     proves them monomorphic — those instructions are rewritten to
//     unchecked/fused quickened forms (opcode.hpp) in an index-aligned
//     copy of the code.
//
// The plan is host-local derived data: it is never serialized and has no
// effect on program identity. See program.hpp for the structures.
[[nodiscard]] Result<ExecPlan> analyze(const Program& program,
                                       const VerifyLimits& limits = {});

// The operand-stack depth *before* each instruction, per function, as
// established by verification (-1 = unreachable instruction). Fails when the
// program does not verify. Used by snapshot restore (interpreter.hpp) to
// prove that a resumed machine state is consistent with the bytecode before
// the interpreter touches it.
[[nodiscard]] Result<std::vector<std::vector<int>>> stack_depth_map(
    const Program& program, const VerifyLimits& limits = {});

}  // namespace tasklets::tvm

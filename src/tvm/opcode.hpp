// TVM instruction set.
//
// A stack machine with typed arithmetic (the compiler resolves types
// statically and emits int- or float- flavoured opcodes), structured call
// frames, bounds-checked array storage and a small pure-math intrinsic
// library. Every instruction carries one optional 64-bit operand.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace tasklets::tvm {

// Base opcode list in enum order, X-macro for building dense per-opcode
// tables (the fast engine's dispatch table in particular). Must mirror the
// enum exactly; opcode.cpp static_asserts the correspondence.
#define TASKLETS_BASE_OPS(X)                                                  \
  X(kNop) X(kPushInt) X(kPushFloat) X(kPop) X(kDup) X(kSwap)                  \
  X(kLoadLocal) X(kStoreLocal)                                                \
  X(kAddInt) X(kSubInt) X(kMulInt) X(kDivInt) X(kModInt) X(kNegInt)           \
  X(kAddFloat) X(kSubFloat) X(kMulFloat) X(kDivFloat) X(kNegFloat)            \
  X(kBitAnd) X(kBitOr) X(kBitXor) X(kShl) X(kShr)                             \
  X(kCmpEqInt) X(kCmpNeInt) X(kCmpLtInt) X(kCmpLeInt) X(kCmpGtInt)            \
  X(kCmpGeInt)                                                                \
  X(kCmpEqFloat) X(kCmpNeFloat) X(kCmpLtFloat) X(kCmpLeFloat) X(kCmpGtFloat)  \
  X(kCmpGeFloat)                                                              \
  X(kLogicalNot) X(kIntToFloat) X(kFloatToInt)                                \
  X(kJump) X(kJumpIfZero) X(kJumpIfNotZero)                                   \
  X(kCall) X(kReturn)                                                         \
  X(kNewArray) X(kArrayLoad) X(kArrayStore) X(kArrayLen)                      \
  X(kIntrinsic) X(kHalt)

// Quickened opcode list, X-macro so the enum, the name table and the fast
// engine's dispatch table stay in sync by construction (see the enum below
// for semantics).
#define TASKLETS_QUICKENED_OPS(X)                                             \
  /* int binops, tag checks removed */                                        \
  X(kAddIntU) X(kSubIntU) X(kMulIntU) X(kDivIntU) X(kModIntU)                 \
  X(kBitAndU) X(kBitOrU) X(kBitXorU) X(kShlU) X(kShrU)                        \
  X(kCmpEqIntU) X(kCmpNeIntU) X(kCmpLtIntU) X(kCmpLeIntU)                     \
  X(kCmpGtIntU) X(kCmpGeIntU)                                                 \
  X(kNegIntU) X(kLogicalNotU) X(kIntToFloatU)                                 \
  /* float binops, tag checks removed */                                      \
  X(kAddFloatU) X(kSubFloatU) X(kMulFloatU) X(kDivFloatU)                     \
  X(kCmpEqFloatU) X(kCmpNeFloatU) X(kCmpLtFloatU) X(kCmpLeFloatU)             \
  X(kCmpGtFloatU) X(kCmpGeFloatU)                                             \
  X(kNegFloatU) X(kFloatToIntU)                                               \
  /* branches on a proven-int condition */                                    \
  X(kJumpIfZeroU) X(kJumpIfNotZeroU)                                          \
  /* arrays with proven ref/index tags (bounds checks kept) */                \
  X(kArrayLoadU) X(kArrayStoreU) X(kArrayLenU)                                \
  /* intrinsic with proven argument tags */                                   \
  X(kIntrinsicU)                                                              \
  /* fused `push_i k; <op>`: operand = k, occupies 2 slots */                 \
  X(kAddIntImmU) X(kSubIntImmU) X(kMulIntImmU)                                \
  X(kCmpEqIntImmU) X(kCmpNeIntImmU) X(kCmpLtIntImmU) X(kCmpLeIntImmU)         \
  X(kCmpGtIntImmU) X(kCmpGeIntImmU)                                           \
  /* fused `push_f x; <op>`: operand = IEEE bits of x, occupies 2 slots */    \
  X(kAddFloatImmU) X(kSubFloatImmU) X(kMulFloatImmU) X(kDivFloatImmU)         \
  X(kCmpEqFloatImmU) X(kCmpNeFloatImmU) X(kCmpLtFloatImmU)                    \
  X(kCmpLeFloatImmU) X(kCmpGtFloatImmU) X(kCmpGeFloatImmU)                    \
  /* fused `load x; load y`: operand = x | y<<32, occupies 2 slots */         \
  X(kLoadLocal2)                                                              \
  /* fused `load ref; load idx; aload`: operand = ref | idx<<32, 3 slots; */  \
  /* LLU = tags proven, LLC = tag-checked at runtime with exact trap */       \
  /* message parity against the reference stepper */                          \
  X(kArrayLoadLLU) X(kArrayLoadLLC)

#define TASKLETS_DECLARE_OP(name) name,

enum class OpCode : std::uint8_t {
  // Stack & constants ------------------------------------------------------
  kNop = 0,
  kPushInt,    // operand: immediate int64
  kPushFloat,  // operand: IEEE-754 bit pattern of the double
  kPop,
  kDup,
  kSwap,

  // Locals (operand: slot index; parameters occupy the first slots) --------
  kLoadLocal,
  kStoreLocal,

  // Integer arithmetic ------------------------------------------------------
  kAddInt,
  kSubInt,
  kMulInt,
  kDivInt,  // traps on divide-by-zero and INT64_MIN / -1
  kModInt,  // traps on modulo-by-zero
  kNegInt,

  // Float arithmetic ---------------------------------------------------------
  kAddFloat,
  kSubFloat,
  kMulFloat,
  kDivFloat,  // IEEE semantics: x/0 is ±inf, 0/0 is NaN (no trap)
  kNegFloat,

  // Bit operations (int only) ------------------------------------------------
  kBitAnd,
  kBitOr,
  kBitXor,
  kShl,  // shift counts are masked to [0,63]
  kShr,  // arithmetic shift right

  // Comparisons: pop two, push int 0/1 ---------------------------------------
  kCmpEqInt,
  kCmpNeInt,
  kCmpLtInt,
  kCmpLeInt,
  kCmpGtInt,
  kCmpGeInt,
  kCmpEqFloat,
  kCmpNeFloat,
  kCmpLtFloat,
  kCmpLeFloat,
  kCmpGtFloat,
  kCmpGeFloat,

  // Logic on int truth values -------------------------------------------------
  kLogicalNot,  // pop x, push (x == 0)

  // Conversions -----------------------------------------------------------------
  kIntToFloat,
  kFloatToInt,  // truncates toward zero; traps if out of int64 range or NaN

  // Control flow (operand: absolute instruction index within the function) ----
  kJump,
  kJumpIfZero,     // pop int; jump when 0
  kJumpIfNotZero,  // pop int; jump when != 0

  // Calls (operand: function index). Arguments are popped (last on top) and
  // become the callee's first locals. Every function returns exactly one value.
  kCall,
  kReturn,

  // Arrays ---------------------------------------------------------------------
  kNewArray,    // pop length (int), push array ref; elements zero-initialised
  kArrayLoad,   // pop index, pop ref; push element
  kArrayStore,  // pop value, pop index, pop ref
  kArrayLen,    // pop ref, push length (int)

  // Intrinsics (operand: Intrinsic id). Pops per-arity args, pushes result. ----
  kIntrinsic,

  kHalt,  // stop with the top of stack as the program result

  // --- Quickened forms (fast-path engine only) -------------------------------
  //
  // Produced by the verifier's quickening pass (verifier.hpp::analyze) when
  // operand tags are proven monomorphic by dataflow, and consumed only by the
  // interpreter's fast-path engine. They are deliberately OUTSIDE
  // kNumOpCodes: the wire codec, the verifier and the reference stepper all
  // reject them, so a quickened instruction can never be serialized,
  // deserialized or verified — it exists only inside an ExecPlan.
  //
  // `U` suffix: tag checks removed (semantic traps — div0, bounds, f2i
  // range — are kept). `ImmU` suffix: fused `push_<k>; op` pair, the operand
  // is the immediate; occupies the pair's first slot, execution skips two
  // slots. `LL` prefix pair fusions read locals directly.
  TASKLETS_QUICKENED_OPS(TASKLETS_DECLARE_OP)

  kQuickOpLimit,  // sentinel: one past the last dispatchable opcode
};

constexpr std::uint8_t kNumOpCodes = static_cast<std::uint8_t>(OpCode::kHalt) + 1;
// Total dispatchable opcodes, including quickened forms (fast-engine table
// size). Quickened values live in [kNumOpCodes, kNumVmOps).
constexpr std::uint8_t kNumVmOps = static_cast<std::uint8_t>(OpCode::kQuickOpLimit);

// Pure-math intrinsics. Arity and result type are fixed per id.
enum class Intrinsic : std::uint8_t {
  kSqrt = 0,  // float -> float
  kSin,
  kCos,
  kTan,
  kExp,
  kLog,       // natural log
  kFloor,
  kCeil,
  kRound,
  kAbsFloat,
  kPow,       // (float, float) -> float
  kAtan2,     // (float, float) -> float
  kAbsInt,    // int -> int
  kMinInt,    // (int, int) -> int
  kMaxInt,
  kMinFloat,  // (float, float) -> float
  kMaxFloat,
};

constexpr std::uint8_t kNumIntrinsics = static_cast<std::uint8_t>(Intrinsic::kMaxFloat) + 1;

struct IntrinsicInfo {
  std::string_view name;
  int arity;        // 1 or 2
  bool float_args;  // whether args/result are float-typed
};

[[nodiscard]] const IntrinsicInfo& intrinsic_info(Intrinsic id) noexcept;
[[nodiscard]] std::optional<Intrinsic> intrinsic_by_name(std::string_view name) noexcept;

struct OpInfo {
  std::string_view name;   // assembler mnemonic
  bool has_operand;
  // Stack effect. For kCall/kIntrinsic, pops is resolved dynamically from the
  // callee arity / intrinsic table; these report pops = -1.
  int pops;
  int pushes;
};

[[nodiscard]] const OpInfo& op_info(OpCode op) noexcept;
[[nodiscard]] std::optional<OpCode> opcode_by_name(std::string_view mnemonic) noexcept;

[[nodiscard]] constexpr bool is_quickened(OpCode op) noexcept {
  return static_cast<std::uint8_t>(op) >= kNumOpCodes &&
         static_cast<std::uint8_t>(op) < kNumVmOps;
}

// Name of any dispatchable opcode, including quickened forms (base opcodes
// render their assembler mnemonic; quickened ones their enumerator name).
// For plan listings and fast-engine debugging only.
[[nodiscard]] std::string_view vm_op_name(OpCode op) noexcept;

}  // namespace tasklets::tvm

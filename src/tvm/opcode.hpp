// TVM instruction set.
//
// A stack machine with typed arithmetic (the compiler resolves types
// statically and emits int- or float- flavoured opcodes), structured call
// frames, bounds-checked array storage and a small pure-math intrinsic
// library. Every instruction carries one optional 64-bit operand.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace tasklets::tvm {

enum class OpCode : std::uint8_t {
  // Stack & constants ------------------------------------------------------
  kNop = 0,
  kPushInt,    // operand: immediate int64
  kPushFloat,  // operand: IEEE-754 bit pattern of the double
  kPop,
  kDup,
  kSwap,

  // Locals (operand: slot index; parameters occupy the first slots) --------
  kLoadLocal,
  kStoreLocal,

  // Integer arithmetic ------------------------------------------------------
  kAddInt,
  kSubInt,
  kMulInt,
  kDivInt,  // traps on divide-by-zero and INT64_MIN / -1
  kModInt,  // traps on modulo-by-zero
  kNegInt,

  // Float arithmetic ---------------------------------------------------------
  kAddFloat,
  kSubFloat,
  kMulFloat,
  kDivFloat,  // IEEE semantics: x/0 is ±inf, 0/0 is NaN (no trap)
  kNegFloat,

  // Bit operations (int only) ------------------------------------------------
  kBitAnd,
  kBitOr,
  kBitXor,
  kShl,  // shift counts are masked to [0,63]
  kShr,  // arithmetic shift right

  // Comparisons: pop two, push int 0/1 ---------------------------------------
  kCmpEqInt,
  kCmpNeInt,
  kCmpLtInt,
  kCmpLeInt,
  kCmpGtInt,
  kCmpGeInt,
  kCmpEqFloat,
  kCmpNeFloat,
  kCmpLtFloat,
  kCmpLeFloat,
  kCmpGtFloat,
  kCmpGeFloat,

  // Logic on int truth values -------------------------------------------------
  kLogicalNot,  // pop x, push (x == 0)

  // Conversions -----------------------------------------------------------------
  kIntToFloat,
  kFloatToInt,  // truncates toward zero; traps if out of int64 range or NaN

  // Control flow (operand: absolute instruction index within the function) ----
  kJump,
  kJumpIfZero,     // pop int; jump when 0
  kJumpIfNotZero,  // pop int; jump when != 0

  // Calls (operand: function index). Arguments are popped (last on top) and
  // become the callee's first locals. Every function returns exactly one value.
  kCall,
  kReturn,

  // Arrays ---------------------------------------------------------------------
  kNewArray,    // pop length (int), push array ref; elements zero-initialised
  kArrayLoad,   // pop index, pop ref; push element
  kArrayStore,  // pop value, pop index, pop ref
  kArrayLen,    // pop ref, push length (int)

  // Intrinsics (operand: Intrinsic id). Pops per-arity args, pushes result. ----
  kIntrinsic,

  kHalt,  // stop with the top of stack as the program result
};

constexpr std::uint8_t kNumOpCodes = static_cast<std::uint8_t>(OpCode::kHalt) + 1;

// Pure-math intrinsics. Arity and result type are fixed per id.
enum class Intrinsic : std::uint8_t {
  kSqrt = 0,  // float -> float
  kSin,
  kCos,
  kTan,
  kExp,
  kLog,       // natural log
  kFloor,
  kCeil,
  kRound,
  kAbsFloat,
  kPow,       // (float, float) -> float
  kAtan2,     // (float, float) -> float
  kAbsInt,    // int -> int
  kMinInt,    // (int, int) -> int
  kMaxInt,
  kMinFloat,  // (float, float) -> float
  kMaxFloat,
};

constexpr std::uint8_t kNumIntrinsics = static_cast<std::uint8_t>(Intrinsic::kMaxFloat) + 1;

struct IntrinsicInfo {
  std::string_view name;
  int arity;        // 1 or 2
  bool float_args;  // whether args/result are float-typed
};

[[nodiscard]] const IntrinsicInfo& intrinsic_info(Intrinsic id) noexcept;
[[nodiscard]] std::optional<Intrinsic> intrinsic_by_name(std::string_view name) noexcept;

struct OpInfo {
  std::string_view name;   // assembler mnemonic
  bool has_operand;
  // Stack effect. For kCall/kIntrinsic, pops is resolved dynamically from the
  // callee arity / intrinsic table; these report pops = -1.
  int pops;
  int pushes;
};

[[nodiscard]] const OpInfo& op_info(OpCode op) noexcept;
[[nodiscard]] std::optional<OpCode> opcode_by_name(std::string_view mnemonic) noexcept;

}  // namespace tasklets::tvm

#include "tvm/value.hpp"

#include <cstdio>

namespace tasklets::tvm {

std::string Value::to_string() const {
  char buf[48];
  switch (tag_) {
    case ValueTag::kInt:
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(int_));
      break;
    case ValueTag::kFloat:
      std::snprintf(buf, sizeof buf, "%.17g", float_);
      break;
    case ValueTag::kArray:
      std::snprintf(buf, sizeof buf, "array#%u", array_);
      break;
  }
  return buf;
}

}  // namespace tasklets::tvm

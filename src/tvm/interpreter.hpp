// The TVM interpreter.
//
// Executes a verified Program against marshalled host arguments, with hard
// resource limits (fuel, operand stack, call depth, heap cells) so a
// provider can run untrusted tasklets without being wedged or exhausted.
//
// Determinism contract: for a given (program, args, limits), the result and
// the fuel consumed are identical on every conforming host. Fuel therefore
// doubles as the device-independent work measure the simulator converts to
// virtual service time via a device's speed factor.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "tvm/marshal.hpp"
#include "tvm/opcode.hpp"
#include "tvm/program.hpp"

namespace tasklets::tvm {

struct ExecLimits {
  std::uint64_t max_fuel = 500'000'000;
  std::uint32_t max_operand_stack = 1u << 16;  // values
  std::uint32_t max_call_depth = 512;
  std::uint64_t max_heap_cells = 1u << 24;  // values across all arrays
};

struct ExecOutcome {
  HostArg result;
  std::uint64_t fuel_used = 0;
  // Instructions retired. Unlike fuel this is plain per-run accounting: it
  // is NOT persisted in migration snapshots and restarts from 0 on resume.
  std::uint64_t instructions = 0;
  std::uint32_t peak_call_depth = 0;
};

// Optional per-opcode execution profile. Pass a pointer to execute()/
// execute_slice()/resume_slice() to turn profiling on; it adds a
// steady_clock read per instruction, so keep it off in benchmarks.
struct ExecProfile {
  struct OpEntry {
    std::uint64_t count = 0;
    std::uint64_t nanos = 0;
  };
  std::array<OpEntry, kNumOpCodes> ops{};
  std::uint64_t instructions = 0;

  void merge(const ExecProfile& other) noexcept;
  // Table of opcodes hit, sorted by total time, with count/total/avg columns.
  [[nodiscard]] std::string to_string() const;
  // Same data machine-readable, heaviest opcode first:
  // {"instructions":N,"ops":[{"op":...,"count":N,"total_ns":N,"avg_ns":X}]}
  [[nodiscard]] std::string to_json() const;
};

// --- Execution engines --------------------------------------------------------
//
// Two engines run the same bytecode:
//
//   kReference — the one-instruction-at-a-time checked stepper. It is the
//     executable specification: every dynamic check (fuel, operand-stack
//     limit, value tags) runs before every instruction.
//   kFast — a basic-block engine driven by a verifier ExecPlan
//     (verifier.hpp::analyze). Fuel and stack-limit checks are hoisted to
//     block entry using the plan's proven worst-case block facts, and
//     instructions whose operand tags the verifier proved are executed in
//     quickened/fused form. Blocks the plan cannot bound (data-dependent
//     fuel, possible mid-block fuel/stack trap or slice-target crossing,
//     mid-block resume points) drain through the reference stepper.
//
// Observable behavior is bit-identical between engines: results,
// `fuel_used`, `instructions`, trap codes/messages/sites, suspension points
// and snapshot bytes. This is a hard invariant — fuel doubles as the
// device-independent work measure (store memoization keys and the
// simulator's virtual service times depend on it), so the fast engine is
// never allowed to drift, only to reach the same numbers faster.
enum class Engine : std::uint8_t {
  kFast,
  kReference,
};

struct ExecOptions {
  // Per-opcode timing (see ExecProfile); non-null forces kReference.
  ExecProfile* profile = nullptr;
  // Cached analyze() result for this program, so repeat executions skip the
  // analysis. Null = analyze on entry (falling back to kReference if the
  // program does not verify). An incompatible plan is ignored.
  const ExecPlan* plan = nullptr;
  Engine engine = Engine::kFast;
};

// Runs the program's entry function. The caller is responsible for having
// verified the program (see verifier.hpp); the interpreter still performs
// dynamic type/bounds checks and traps cleanly, but relies on the verifier
// for operand-range and stack-shape safety.
//
// Trap taxonomy (Status codes):
//   kDeadlineExceeded   — fuel exhausted
//   kResourceExhausted  — operand stack / call depth / heap limit
//   kAborted            — deterministic runtime trap (type confusion,
//                         division by zero, array bounds, bad f2i)
//   kInvalidArgument    — argument count mismatch with entry arity
[[nodiscard]] Result<ExecOutcome> execute(const Program& program,
                                          const std::vector<HostArg>& args,
                                          const ExecLimits& limits = {},
                                          ExecProfile* profile = nullptr);

[[nodiscard]] Result<ExecOutcome> execute(const Program& program,
                                          const std::vector<HostArg>& args,
                                          const ExecLimits& limits,
                                          const ExecOptions& options);

// Convenience: verify + execute.
[[nodiscard]] Result<ExecOutcome> verify_and_execute(
    const Program& program, const std::vector<HostArg>& args,
    const ExecLimits& limits = {}, ExecProfile* profile = nullptr);

// --- Resumable execution: the tasklet-migration substrate ---------------------
//
// A running tasklet can be suspended at any instruction boundary into a
// Suspension: a self-contained, serializable machine state (operand stack,
// locals, call frames, heap, fuel) bound to its program by content hash.
// Ship the bytes to another device and resume there — execution continues
// bit-exactly where it stopped, which is what device-to-device tasklet
// migration needs.
//
// Restore validates untrusted snapshot bytes rigorously before the
// interpreter touches them: structural decoding, program-hash binding,
// call-chain consistency (every suspended caller sits right after a kCall to
// the next frame's function), operand-stack depth proven against the
// verifier's per-instruction depth map, array-handle range checks and
// resource limits. A forged or corrupted snapshot is rejected with
// kDataLoss/kInvalidArgument; it cannot reach unsafe interpreter states.

struct Suspension {
  Bytes state;                  // opaque "TSNP" encoding of the machine
  std::uint64_t fuel_used = 0;  // fuel consumed so far (scheduling input)
  // Instructions retired so far. In-memory only — not part of `state`, so
  // it survives same-host slicing but resets to 0 across a migration.
  std::uint64_t instructions = 0;
};

using SliceOutcome = std::variant<ExecOutcome, Suspension>;

// Runs until completion or until ~`fuel_slice` additional fuel is consumed
// (0 = unbounded, equivalent to execute()). The fuel ceiling in `limits`
// still applies across all slices.
[[nodiscard]] Result<SliceOutcome> execute_slice(const Program& program,
                                                 const std::vector<HostArg>& args,
                                                 const ExecLimits& limits,
                                                 std::uint64_t fuel_slice,
                                                 ExecProfile* profile = nullptr);

[[nodiscard]] Result<SliceOutcome> execute_slice(const Program& program,
                                                 const std::vector<HostArg>& args,
                                                 const ExecLimits& limits,
                                                 std::uint64_t fuel_slice,
                                                 const ExecOptions& options);

// Continues a suspended execution, on any host holding the same program.
// Snapshots are engine-agnostic: a suspension taken under one engine resumes
// under the other (both engines suspend only at instruction boundaries with
// fully reconciled state).
[[nodiscard]] Result<SliceOutcome> resume_slice(const Program& program,
                                                const Suspension& suspension,
                                                const ExecLimits& limits,
                                                std::uint64_t fuel_slice,
                                                ExecProfile* profile = nullptr);

[[nodiscard]] Result<SliceOutcome> resume_slice(const Program& program,
                                                const Suspension& suspension,
                                                const ExecLimits& limits,
                                                std::uint64_t fuel_slice,
                                                const ExecOptions& options);

// Reads the fuel-consumed-so-far field out of snapshot bytes without
// restoring the machine (schedulers use it to charge only remaining work).
[[nodiscard]] Result<std::uint64_t> snapshot_fuel(std::span<const std::byte> state);

}  // namespace tasklets::tvm

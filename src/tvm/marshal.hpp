// Marshalling of tasklet parameters and results across the consumer /
// provider boundary.
//
// The host-visible data model is deliberately flat: scalars (int64, double)
// and homogeneous 1-D arrays of them. Nested arrays exist only *inside* a
// VM execution; the boundary keeps the wire format simple and every
// implementation language able to produce/consume it.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"

namespace tasklets::tvm {

using HostArg = std::variant<std::int64_t, double, std::vector<std::int64_t>,
                             std::vector<double>>;

[[nodiscard]] std::string to_string(const HostArg& arg);

// Wire encoding: tag byte, then payload (varint-signed scalar, raw f64, or
// varint count + elements).
void encode_arg(ByteWriter& w, const HostArg& arg);
[[nodiscard]] Result<HostArg> decode_arg(ByteReader& r);

void encode_args(ByteWriter& w, const std::vector<HostArg>& args);
[[nodiscard]] Result<std::vector<HostArg>> decode_args(ByteReader& r);

// Deep structural equality, with exact float comparison (results are
// bit-deterministic across conforming TVMs, so replicas must agree exactly —
// this is what redundancy voting uses).
[[nodiscard]] bool args_equal(const HostArg& a, const HostArg& b) noexcept;

// Approximate payload size in bytes (transfer-cost model input).
[[nodiscard]] std::size_t arg_wire_size(const HostArg& arg) noexcept;

}  // namespace tasklets::tvm

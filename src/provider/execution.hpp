// Execution services: how a provider actually runs a tasklet body.
//
// The ProviderAgent is runtime-agnostic; it hands assignments to an
// ExecutionService and gets completions back *in its own execution context*
// (the hosting runtime guarantees the `done` continuation runs serialized
// with the agent's other handlers, with a fresh Outbox). Implementations:
//
//   * VmExecutor — shared, thread-safe bytecode executor with a per-program
//     verification + fast-path-plan cache; used directly by the threaded
//     runtime's worker pool and by the simulator to obtain (result, fuel)
//     pairs.
//   * The simulator's ExecutionService lives in sim/ (it converts fuel to
//     virtual time using the device profile).
#pragma once

#include <atomic>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/trace.hpp"
#include "proto/actor.hpp"
#include "proto/types.hpp"
#include "store/digest.hpp"
#include "tvm/interpreter.hpp"

namespace tasklets::provider {

struct ExecRequest {
  AttemptId attempt;
  TaskletId tasklet;
  proto::TaskletBody body;
  std::uint64_t max_fuel = 0;  // 0 = executor default
  // Non-empty for migrated work: resume from this TVM snapshot instead of
  // starting the program from its entry point.
  Bytes resume_snapshot;
  // Tracing context of the assignment; execution services that record "vm"
  // spans parent them under this.
  TraceContext trace;
  // Self-measurement runs (provider/benchmark.cpp) set this so calibration
  // work is excluded from the provider.vm.* metrics.
  bool calibration = false;
};

// Invoked exactly once per execute() call, serialized with the owning
// actor's handlers.
using ExecDone =
    std::function<void(proto::AttemptOutcome, SimTime, proto::Outbox&)>;

class ExecutionService {
 public:
  virtual ~ExecutionService() = default;
  virtual void execute(ExecRequest request, ExecDone done) = 0;
};

// Synchronous bytecode execution with a content-digest verification cache.
// Thread-safe: multiple provider slots may execute concurrently. The cache
// is entry-capped with LRU eviction so long multi-program runs cannot grow
// it without bound; entries in use by a running execution survive their own
// eviction (shared ownership) and are simply dropped when the run finishes.
class VmExecutor {
 public:
  explicit VmExecutor(tvm::ExecLimits default_limits = {},
                      std::size_t max_cache_entries = kDefaultCacheEntries);

  static constexpr std::size_t kDefaultCacheEntries = 128;

  // Runs a tasklet body to completion on the calling thread. VM traps are
  // reported through AttemptOutcome (status kTrap), never as a Result error.
  // Honours request.resume_snapshot (migration).
  [[nodiscard]] proto::AttemptOutcome run(const ExecRequest& request);

  // Like run(), but executes in fuel slices and checkpoints when `drain`
  // becomes true between slices: returns status kSuspended with the machine
  // snapshot in `outcome.snapshot`. This is how a provider evacuates
  // in-flight work when asked to leave gracefully.
  [[nodiscard]] proto::AttemptOutcome run_sliced(const ExecRequest& request,
                                                 std::uint64_t fuel_slice,
                                                 const std::atomic<bool>& drain);

  // Number of verified programs currently cached.
  [[nodiscard]] std::size_t cache_size() const;
  // Entries dropped by the LRU cap since construction (also exported as the
  // provider.vm.cache_evictions metric).
  [[nodiscard]] std::uint64_t cache_evictions() const;

 private:
  struct CacheEntry {
    tvm::Program program;
    // Fast-path execution plan (tvm::analyze), built once per cached
    // program so repeat executions skip analysis entirely.
    tvm::ExecPlan plan;
    bool verified_ok = false;
    std::string verify_error;
    std::list<store::Digest>::iterator lru;  // position in lru_
  };

  [[nodiscard]] std::shared_ptr<const CacheEntry> lookup_or_verify(
      const Bytes& program_bytes);

  tvm::ExecLimits default_limits_;
  std::size_t max_cache_entries_;
  mutable std::mutex mutex_;
  std::uint64_t evictions_ = 0;
  std::list<store::Digest> lru_;  // most-recent first
  std::unordered_map<store::Digest, std::shared_ptr<CacheEntry>> cache_;
};

// Injects silent result corruption with probability `fault_rate` — models
// the faulty/byzantine providers that QoC redundancy voting defends
// against. Deterministic given the seed.
[[nodiscard]] proto::AttemptOutcome maybe_corrupt(proto::AttemptOutcome outcome,
                                                  double fault_rate, Rng& rng);

}  // namespace tasklets::provider

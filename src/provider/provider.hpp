// The provider agent: a resource provider's middleware endpoint.
//
// Registers its capability with the broker, heartbeats, accepts tasklet
// assignments up to its slot count (rejecting overload), delegates execution
// to the runtime's ExecutionService and reports results. A provider can
// leave gracefully (deregister) or vanish (churn) — the broker handles both.
#pragma once

#include <deque>
#include <unordered_set>

#include "proto/actor.hpp"
#include "provider/execution.hpp"

namespace tasklets::provider {

struct ProviderConfig {
  SimTime heartbeat_interval = 1 * kSecond;
  // Span collector; nullptr disables tracing on this provider.
  TraceStore* trace = nullptr;
};

struct ProviderAgentStats {
  std::uint64_t assignments = 0;
  std::uint64_t completed = 0;
  std::uint64_t trapped = 0;
  std::uint64_t rejected = 0;
  std::uint64_t duplicate_assigns = 0;  // retransmits fenced by the seen-set
};

class ProviderAgent final : public proto::Actor {
 public:
  ProviderAgent(NodeId id, NodeId broker, proto::Capability capability,
                ExecutionService& execution, ProviderConfig config = {});

  void on_start(SimTime now, proto::Outbox& out) override;
  void on_message(const proto::Envelope& envelope, SimTime now,
                  proto::Outbox& out) override;
  void on_timer(std::uint64_t timer_id, SimTime now, proto::Outbox& out) override;

  // Graceful departure: deregisters with the broker; in-flight work still
  // completes and is reported.
  void leave(proto::Outbox& out);
  // Crash semantics (churn): stops heartbeating and rejects assignments
  // without telling the broker — the broker discovers via liveness timeout.
  // In-flight results are suppressed by the runtime's execution service, so
  // the slot accounting is cleared here (the work died with the process).
  void crash() noexcept {
    online_ = false;
    registered_ = false;
    inflight_.clear();
  }
  [[nodiscard]] bool online() const noexcept { return online_; }
  // Re-join after churn downtime (the runtime calls this when the device
  // comes back online).
  void rejoin(SimTime now, proto::Outbox& out);

  [[nodiscard]] std::uint32_t busy_slots() const noexcept {
    return static_cast<std::uint32_t>(inflight_.size());
  }
  [[nodiscard]] const proto::Capability& capability() const noexcept {
    return capability_;
  }
  [[nodiscard]] const ProviderAgentStats& stats() const noexcept { return stats_; }
  // True once the broker acked the current registration incarnation.
  [[nodiscard]] bool registered() const noexcept { return registered_; }
  [[nodiscard]] std::uint64_t incarnation() const noexcept { return incarnation_; }

 private:
  static constexpr std::uint64_t kHeartbeatTimer = 1;
  // Fence window for duplicate AssignTasklet retransmits: attempt ids this
  // agent has already accepted (including long-completed ones, so a very
  // late duplicate cannot re-execute). Bounded FIFO to cap memory.
  static constexpr std::size_t kSeenAttemptsCap = 4096;

  void handle_assign(const proto::AssignTasklet& m, SimTime now, proto::Outbox& out);
  void send_register(proto::Outbox& out);
  void remember_attempt(AttemptId attempt);

  NodeId broker_;
  proto::Capability capability_;
  ExecutionService& execution_;
  ProviderConfig config_;
  ProviderAgentStats stats_;
  std::unordered_set<AttemptId> inflight_;
  std::unordered_set<AttemptId> seen_attempts_;
  std::deque<AttemptId> seen_order_;
  std::uint64_t incarnation_ = 1;
  bool registered_ = false;
  bool online_ = true;
};

}  // namespace tasklets::provider

// The provider agent: a resource provider's middleware endpoint.
//
// Registers its capability with the broker, heartbeats, accepts tasklet
// assignments up to its slot count (rejecting overload), delegates execution
// to the runtime's ExecutionService and reports results. A provider can
// leave gracefully (deregister) or vanish (churn) — the broker handles both.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "proto/actor.hpp"
#include "provider/execution.hpp"
#include "store/blob_store.hpp"

namespace tasklets::provider {

struct ProviderConfig {
  SimTime heartbeat_interval = 1 * kSecond;
  // Span collector; nullptr disables tracing on this provider.
  TraceStore* trace = nullptr;
  // Byte budget for the local digest -> program-bytes cache that resolves
  // DigestBody assignments (protocol r3).
  std::size_t program_cache_budget_bytes = 16u << 20;
  // FetchProgram re-sends (on the heartbeat cadence) before a parked
  // assignment is rejected with "program unavailable" — the broker then
  // re-issues it, inline.
  std::uint32_t program_fetch_attempts = 5;
};

struct ProviderAgentStats {
  std::uint64_t assignments = 0;
  std::uint64_t completed = 0;
  std::uint64_t trapped = 0;
  std::uint64_t rejected = 0;
  std::uint64_t duplicate_assigns = 0;  // retransmits fenced by the seen-set
  std::uint64_t program_cache_hits = 0;    // DigestBody resolved locally
  std::uint64_t program_cache_misses = 0;  // DigestBody parked for a fetch
  std::uint64_t program_fetches = 0;       // FetchProgram messages sent
};

class ProviderAgent final : public proto::Actor {
 public:
  ProviderAgent(NodeId id, NodeId broker, proto::Capability capability,
                ExecutionService& execution, ProviderConfig config = {});

  void on_start(SimTime now, proto::Outbox& out) override;
  void on_message(const proto::Envelope& envelope, SimTime now,
                  proto::Outbox& out) override;
  void on_timer(std::uint64_t timer_id, SimTime now, proto::Outbox& out) override;

  // Graceful departure: deregisters with the broker; in-flight work still
  // completes and is reported.
  void leave(proto::Outbox& out);
  // Crash semantics (churn): stops heartbeating and rejects assignments
  // without telling the broker — the broker discovers via liveness timeout.
  // In-flight results are suppressed by the runtime's execution service, so
  // the slot accounting is cleared here (the work died with the process).
  // The program cache dies with the process too — the broker learns this
  // from the rejoin incarnation bump and forgets our warm set.
  void crash() noexcept {
    online_ = false;
    registered_ = false;
    inflight_.clear();
    parked_.clear();
    programs_.clear();
  }
  [[nodiscard]] bool online() const noexcept { return online_; }
  // Re-join after churn downtime (the runtime calls this when the device
  // comes back online).
  void rejoin(SimTime now, proto::Outbox& out);

  [[nodiscard]] std::uint32_t busy_slots() const noexcept {
    return static_cast<std::uint32_t>(inflight_.size());
  }
  [[nodiscard]] const proto::Capability& capability() const noexcept {
    return capability_;
  }
  [[nodiscard]] const ProviderAgentStats& stats() const noexcept { return stats_; }
  // True once the broker acked the current registration incarnation.
  [[nodiscard]] bool registered() const noexcept { return registered_; }
  [[nodiscard]] std::uint64_t incarnation() const noexcept { return incarnation_; }

 private:
  static constexpr std::uint64_t kHeartbeatTimer = 1;
  // Fence window for duplicate AssignTasklet retransmits: attempt ids this
  // agent has already accepted (including long-completed ones, so a very
  // late duplicate cannot re-execute). Bounded FIFO to cap memory.
  static constexpr std::size_t kSeenAttemptsCap = 4096;

  // An accepted DigestBody assignment waiting for its program bytes.
  struct ParkedAssign {
    proto::AssignTasklet assign;
    SimTime accepted_at = 0;
    std::uint32_t fetches = 0;
  };

  void handle_assign(const proto::AssignTasklet& m, SimTime now, proto::Outbox& out);
  void handle_program_data(const proto::ProgramData& m, SimTime now);
  // Starts execution of an accepted assignment whose body is fully inline
  // (the completion reports through its own outbox).
  void start_execution(const proto::AssignTasklet& m, SimTime now);
  void reject_attempt(const proto::AssignTasklet& m, std::string reason,
                      SimTime now, proto::Outbox& out);
  // Re-sends FetchProgram for parked work; gives up (rejects) past the
  // fetch-attempt budget. Runs on the heartbeat cadence.
  void retry_parked_fetches(SimTime now, proto::Outbox& out);
  void send_register(proto::Outbox& out);
  void remember_attempt(AttemptId attempt);

  NodeId broker_;
  proto::Capability capability_;
  ExecutionService& execution_;
  ProviderConfig config_;
  ProviderAgentStats stats_;
  std::unordered_set<AttemptId> inflight_;
  std::unordered_set<AttemptId> seen_attempts_;
  std::deque<AttemptId> seen_order_;
  // Local program store for DigestBody resolution: digest -> serialized
  // program. Unpinned LRU within its byte budget (re-fetching evicted
  // content is always possible, so nothing needs a refcount here).
  store::BlobStore programs_{16u << 20};
  // Parked assignments by awaited digest (slot already occupied — they are
  // in inflight_, so overload rejection still accounts for them).
  std::unordered_map<store::Digest, std::vector<ParkedAssign>> parked_;
  std::uint64_t incarnation_ = 1;
  bool registered_ = false;
  bool online_ = true;
};

}  // namespace tasklets::provider

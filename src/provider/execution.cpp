#include "provider/execution.hpp"

#include "common/bytes.hpp"
#include "common/metrics.hpp"
#include "tvm/verifier.hpp"

namespace tasklets::provider {

VmExecutor::VmExecutor(tvm::ExecLimits default_limits,
                       std::size_t max_cache_entries)
    : default_limits_(default_limits),
      max_cache_entries_(max_cache_entries == 0 ? 1 : max_cache_entries) {}

std::size_t VmExecutor::cache_size() const {
  const std::scoped_lock lock(mutex_);
  return cache_.size();
}

std::uint64_t VmExecutor::cache_evictions() const {
  const std::scoped_lock lock(mutex_);
  return evictions_;
}

std::shared_ptr<const VmExecutor::CacheEntry> VmExecutor::lookup_or_verify(
    const Bytes& program_bytes) {
  const store::Digest key = store::digest_bytes(
      std::span<const std::byte>(program_bytes.data(), program_bytes.size()));
  {
    const std::scoped_lock lock(mutex_);
    if (const auto it = cache_.find(key); it != cache_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second->lru);
      return it->second;
    }
  }
  // Deserialize + verify outside the lock; insertion races are benign (both
  // entries are identical, the loser is dropped).
  auto entry = std::make_shared<CacheEntry>();
  auto program = tvm::Program::deserialize(
      std::span<const std::byte>(program_bytes.data(), program_bytes.size()));
  if (!program.is_ok()) {
    entry->verified_ok = false;
    entry->verify_error = program.status().to_string();
  } else {
    entry->program = std::move(program).value();
    // analyze() accepts exactly the programs verify() accepts, and
    // additionally yields the fast-path plan, so one pass does both.
    auto plan = tvm::analyze(entry->program);
    entry->verified_ok = plan.is_ok();
    if (plan.is_ok()) {
      entry->plan = std::move(plan).value();
    } else {
      entry->verify_error = plan.status().to_string();
    }
  }
  std::uint64_t evicted = 0;
  std::shared_ptr<const CacheEntry> result;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      // Lost the verify race; keep the incumbent.
      lru_.splice(lru_.begin(), lru_, it->second->lru);
      result = it->second;
    } else {
      lru_.push_front(key);
      entry->lru = lru_.begin();
      result = cache_.emplace(key, std::move(entry)).first->second;
      while (cache_.size() > max_cache_entries_) {
        // Coldest first. An executing thread still holding the shared_ptr
        // keeps its entry alive past eviction; only the cache forgets it.
        cache_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
        ++evicted;
      }
    }
  }
  if (evicted > 0) TASKLETS_COUNT("provider.vm.cache_evictions", evicted);
  return result;
}

namespace {
// Converts a slice result into an attempt outcome (completion path).
proto::AttemptOutcome finish_outcome(tvm::ExecOutcome&& exec) {
  proto::AttemptOutcome outcome;
  outcome.status = proto::AttemptStatus::kOk;
  outcome.result = std::move(exec.result);
  outcome.fuel_used = exec.fuel_used;
  outcome.instructions = exec.instructions;
  return outcome;
}

proto::AttemptOutcome trap_outcome(const Status& status) {
  proto::AttemptOutcome outcome;
  outcome.status = proto::AttemptStatus::kTrap;
  outcome.error = status.to_string();
  return outcome;
}
}  // namespace

proto::AttemptOutcome VmExecutor::run(const ExecRequest& request) {
  // Unbounded slice, never-draining flag: plain execution.
  static const std::atomic<bool> kNeverDrain{false};
  return run_sliced(request, 0, kNeverDrain);
}

proto::AttemptOutcome VmExecutor::run_sliced(const ExecRequest& request,
                                             std::uint64_t fuel_slice,
                                             const std::atomic<bool>& drain) {
  proto::AttemptOutcome outcome;
  if (const auto* synth = std::get_if<proto::SyntheticBody>(&request.body)) {
    outcome.status = proto::AttemptStatus::kOk;
    outcome.result = synth->result;
    outcome.fuel_used = synth->fuel;
    return outcome;
  }
  if (std::holds_alternative<proto::DigestBody>(request.body)) {
    // Digest bodies are resolved to inline bytecode by the ProviderAgent
    // before execution; one reaching the executor means the resolution
    // layer was bypassed. Rejecting lets the broker re-issue inline.
    outcome.status = proto::AttemptStatus::kRejected;
    outcome.error = "unresolved digest body";
    return outcome;
  }
  const auto& vm_body = std::get<proto::VmBody>(request.body);
  const std::shared_ptr<const CacheEntry> entry =
      lookup_or_verify(vm_body.program);
  if (!entry->verified_ok) {
    // Verification failure is deterministic: every honest provider would
    // reject the same bytes. Report it as a trap so the broker fails fast
    // instead of re-issuing (kRejected is reserved for capacity/offline).
    outcome.status = proto::AttemptStatus::kTrap;
    outcome.error = "program rejected: " + entry->verify_error;
    return outcome;
  }
  tvm::ExecLimits limits = default_limits_;
  if (request.max_fuel > 0) limits.max_fuel = request.max_fuel;
  tvm::ExecOptions options;
  options.plan = &entry->plan;

  // First slice: fresh start or resume of a migrated snapshot.
  Result<tvm::SliceOutcome> slice = [&]() -> Result<tvm::SliceOutcome> {
    if (!request.resume_snapshot.empty()) {
      tvm::Suspension incoming;
      incoming.state = request.resume_snapshot;
      return tvm::resume_slice(entry->program, incoming, limits, fuel_slice,
                               options);
    }
    return tvm::execute_slice(entry->program, vm_body.args, limits, fuel_slice,
                              options);
  }();

  const bool count = !request.calibration;
  for (;;) {
    if (!slice.is_ok()) {
      if (count) TASKLETS_COUNT("provider.vm.traps", 1);
      return trap_outcome(slice.status());
    }
    if (auto* exec = std::get_if<tvm::ExecOutcome>(&*slice)) {
      if (count) {
        TASKLETS_COUNT("provider.vm.executions", 1);
        TASKLETS_COUNT("provider.vm.instructions", exec->instructions);
      }
      return finish_outcome(std::move(*exec));
    }
    auto& suspension = std::get<tvm::Suspension>(*slice);
    if (drain.load(std::memory_order_relaxed)) {
      outcome.status = proto::AttemptStatus::kSuspended;
      outcome.fuel_used = suspension.fuel_used;
      outcome.instructions = suspension.instructions;
      outcome.snapshot = std::move(suspension.state);
      if (count) {
        TASKLETS_COUNT("provider.vm.suspensions", 1);
        TASKLETS_COUNT("provider.vm.snapshot_bytes", outcome.snapshot.size());
      }
      return outcome;
    }
    if (count) TASKLETS_COUNT("provider.vm.slices", 1);
    slice = tvm::resume_slice(entry->program, suspension, limits, fuel_slice,
                              options);
  }
}

proto::AttemptOutcome maybe_corrupt(proto::AttemptOutcome outcome,
                                    double fault_rate, Rng& rng) {
  if (outcome.status != proto::AttemptStatus::kOk || fault_rate <= 0.0 ||
      !rng.bernoulli(fault_rate)) {
    return outcome;
  }
  // Perturb the result in a type-preserving way: silent corruption, not a
  // visible failure.
  std::visit(
      [&](auto& v) {
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, std::int64_t>) {
          v ^= static_cast<std::int64_t>(1 + rng.next_below(255));
        } else if constexpr (std::is_same_v<T, double>) {
          v += 1.0 + rng.uniform();
        } else if constexpr (std::is_same_v<T, std::vector<std::int64_t>>) {
          if (!v.empty()) {
            v[rng.next_below(v.size())] ^= 0x5A;
          } else {
            v.push_back(-1);
          }
        } else {
          if (!v.empty()) {
            v[rng.next_below(v.size())] += 1.0;
          } else {
            v.push_back(-1.0);
          }
        }
      },
      outcome.result);
  return outcome;
}

}  // namespace tasklets::provider

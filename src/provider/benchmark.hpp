// Provider speed self-assessment.
//
// On startup a provider in the threaded runtime measures how many TVM fuel
// units per second this host actually executes, by timing a standard
// calibration kernel. The score goes into the advertised Capability, making
// heterogeneous hosts comparable — the same mechanism the paper uses to
// rank devices.
#pragma once

#include "common/clock.hpp"
#include "provider/execution.hpp"

namespace tasklets::provider {

// Runs the calibration kernel repeatedly for ~`budget` wall time and returns
// the measured fuel/second. Never returns a non-positive value.
[[nodiscard]] double measure_speed(VmExecutor& executor,
                                   SimTime budget = 50 * kMillisecond);

}  // namespace tasklets::provider

#include "provider/benchmark.hpp"

#include "tvm/assembler.hpp"

namespace tasklets::provider {

namespace {

// Tight integer loop: representative mix of loads, arithmetic and branches.
constexpr std::string_view kCalibrationKernel = R"(
  .func main arity=1 locals=2
    push_i 0
    store 1
  loop:
    load 0
    jz done
    load 1
    load 0
    mul_i
    push_i 1000003
    mod_i
    store 1
    load 0
    push_i 1
    sub_i
    store 0
    jmp loop
  done:
    load 1
    halt
  .end
  .entry main
)";

}  // namespace

double measure_speed(VmExecutor& executor, SimTime budget) {
  auto program = tvm::assemble(kCalibrationKernel);
  if (!program.is_ok()) return 1.0;  // unreachable; keep the contract

  ExecRequest request;
  request.attempt = AttemptId{1};
  request.tasklet = TaskletId{1};
  request.calibration = true;
  proto::VmBody body;
  body.program = program->serialize();
  body.args = {std::int64_t{100000}};
  request.body = std::move(body);

  const SteadyClock clock;
  const SimTime start = clock.now();
  std::uint64_t fuel = 0;
  int rounds = 0;
  while (clock.now() - start < budget || rounds == 0) {
    const auto outcome = executor.run(request);
    if (outcome.status != proto::AttemptStatus::kOk) return 1.0;
    fuel += outcome.fuel_used;
    ++rounds;
  }
  const double elapsed = to_seconds(clock.now() - start);
  if (elapsed <= 0.0) return 1.0;
  const double speed = static_cast<double>(fuel) / elapsed;
  return speed > 0.0 ? speed : 1.0;
}

}  // namespace tasklets::provider

#include "provider/provider.hpp"

#include "common/log.hpp"
#include "common/metrics.hpp"

namespace tasklets::provider {

ProviderAgent::ProviderAgent(NodeId id, NodeId broker, proto::Capability capability,
                             ExecutionService& execution, ProviderConfig config)
    : Actor(id),
      broker_(broker),
      capability_(std::move(capability)),
      execution_(execution),
      config_(config),
      programs_(config.program_cache_budget_bytes) {}

void ProviderAgent::send_register(proto::Outbox& out) {
  proto::RegisterProvider m;
  m.capability = capability_;
  m.incarnation = incarnation_;
  out.send(broker_, std::move(m));
}

void ProviderAgent::on_start(SimTime, proto::Outbox& out) {
  send_register(out);
  out.arm_timer(kHeartbeatTimer, config_.heartbeat_interval);
}

void ProviderAgent::leave(proto::Outbox& out) {
  online_ = false;
  registered_ = false;
  // Parked work never started executing, so there is nothing to checkpoint:
  // hand it straight back for re-issue elsewhere.
  for (auto& [digest, parked] : parked_) {
    for (auto& entry : parked) {
      inflight_.erase(entry.assign.attempt);
      proto::AttemptResult result;
      result.attempt = entry.assign.attempt;
      result.tasklet = entry.assign.tasklet;
      result.outcome.status = proto::AttemptStatus::kRejected;
      result.outcome.error = "provider leaving";
      out.send(broker_, std::move(result));
    }
  }
  parked_.clear();
  proto::DeregisterProvider deregister;
  // In-flight work will be checkpointed by the runtime's execution service
  // and reported as suspended; tell the broker to wait for it.
  deregister.draining = !inflight_.empty();
  out.send(broker_, deregister);
}

void ProviderAgent::rejoin(SimTime, proto::Outbox& out) {
  online_ = true;
  registered_ = false;
  ++incarnation_;  // a new epoch: the broker re-issues anything we held
  send_register(out);
}

void ProviderAgent::on_timer(std::uint64_t timer_id, SimTime now,
                             proto::Outbox& out) {
  if (timer_id != kHeartbeatTimer) return;
  if (online_) {
    if (registered_) {
      proto::Heartbeat hb;
      hb.busy_slots = busy_slots();
      out.send(broker_, hb);
    } else {
      // Registration is at-least-once: keep re-sending on the heartbeat
      // cadence until the broker acks this incarnation. The broker treats
      // same-incarnation retransmits as a refresh, so this is safe.
      send_register(out);
    }
    retry_parked_fetches(now, out);
  }
  out.arm_timer(kHeartbeatTimer, config_.heartbeat_interval);
}

void ProviderAgent::on_message(const proto::Envelope& envelope, SimTime now,
                               proto::Outbox& out) {
  if (const auto* assign = std::get_if<proto::AssignTasklet>(&envelope.payload)) {
    handle_assign(*assign, now, out);
    return;
  }
  if (const auto* ack = std::get_if<proto::RegisterAck>(&envelope.payload)) {
    // Acks for stale incarnations (pre-rejoin) are ignored.
    if (ack->incarnation == incarnation_) registered_ = true;
    return;
  }
  if (const auto* data = std::get_if<proto::ProgramData>(&envelope.payload)) {
    handle_program_data(*data, now);
    return;
  }
  TASKLETS_LOG(kWarn, "provider")
      << id().to_string() << ": unexpected message "
      << proto::message_name(envelope.payload);
}

void ProviderAgent::remember_attempt(AttemptId attempt) {
  seen_attempts_.insert(attempt);
  seen_order_.push_back(attempt);
  if (seen_order_.size() > kSeenAttemptsCap) {
    seen_attempts_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
}

void ProviderAgent::handle_assign(const proto::AssignTasklet& m, SimTime now,
                                  proto::Outbox& out) {
  if (seen_attempts_.contains(m.attempt)) {
    // Duplicate retransmit of an attempt we already accepted (possibly long
    // finished). Re-executing would double-spend the slot and double-report;
    // staying silent is safe because the broker re-issues via its attempt
    // timeout if the original result was lost.
    ++stats_.duplicate_assigns;
    TASKLETS_COUNT("provider.duplicate_assigns", 1);
    return;
  }
  ++stats_.assignments;
  TASKLETS_COUNT("provider.assignments", 1);
  if (!online_ || inflight_.size() >= capability_.slots) {
    reject_attempt(m, online_ ? "no free execution slot" : "provider offline",
                   now, out);
    return;
  }
  inflight_.insert(m.attempt);
  remember_attempt(m.attempt);

  // Content-addressed bodies (r3): resolve the digest from the local
  // program store, or park the accepted assignment and pull the bytes from
  // the broker. Inline bodies seed the store so future assignments of the
  // same program can arrive digest-only.
  if (const auto* digest_body = std::get_if<proto::DigestBody>(&m.body)) {
    const store::Digest digest = digest_body->program_digest;
    if (const Bytes* program = programs_.get(digest); program != nullptr) {
      ++stats_.program_cache_hits;
      TASKLETS_COUNT("provider.program_cache.hits", 1);
      proto::AssignTasklet resolved = m;
      resolved.body = proto::VmBody{*program, digest_body->args};
      start_execution(resolved, now);
      return;
    }
    ++stats_.program_cache_misses;
    TASKLETS_COUNT("provider.program_cache.misses", 1);
    if (config_.trace != nullptr) {
      config_.trace->instant(m.trace, "program_fetch", id(), m.tasklet, now,
                             {{"digest", digest.to_string()}});
    }
    ParkedAssign parked;
    parked.assign = m;
    parked.accepted_at = now;
    parked.fetches = 1;
    // One FetchProgram per digest: assignments piling up behind an in-flight
    // fetch ride it instead of re-asking (the heartbeat retry covers loss).
    auto& waiting = parked_[digest];
    const bool fetch_in_flight = !waiting.empty();
    waiting.push_back(std::move(parked));
    if (!fetch_in_flight) {
      ++stats_.program_fetches;
      TASKLETS_COUNT("provider.program_fetches", 1);
      out.send(broker_, proto::FetchProgram{digest});
    }
    return;
  }
  if (const auto* vm = std::get_if<proto::VmBody>(&m.body)) {
    programs_.put(store::digest_bytes(std::span<const std::byte>(
                      vm->program.data(), vm->program.size())),
                  vm->program);
  }
  start_execution(m, now);
}

void ProviderAgent::reject_attempt(const proto::AssignTasklet& m,
                                   std::string reason, SimTime now,
                                   proto::Outbox& out) {
  ++stats_.rejected;
  TASKLETS_COUNT("provider.rejected", 1);
  if (config_.trace != nullptr) {
    config_.trace->instant(m.trace, "reject", id(), m.tasklet, now,
                           {{"reason", reason}});
  }
  proto::AttemptResult result;
  result.attempt = m.attempt;
  result.tasklet = m.tasklet;
  result.outcome.status = proto::AttemptStatus::kRejected;
  result.outcome.error = std::move(reason);
  out.send(broker_, std::move(result));
}

void ProviderAgent::handle_program_data(const proto::ProgramData& m,
                                        SimTime now) {
  // Verify before trusting: the fault layer can corrupt frames, and a blob
  // that doesn't hash to its claimed digest would poison the cache for
  // every future assignment naming it. Drop and let the retry loop re-pull.
  const store::Digest actual = store::digest_bytes(
      std::span<const std::byte>(m.program.data(), m.program.size()));
  if (actual != m.program_digest) {
    TASKLETS_LOG(kWarn, "provider")
        << id().to_string() << ": ProgramData digest mismatch; dropping";
    return;
  }
  programs_.put(m.program_digest, m.program);
  const auto it = parked_.find(m.program_digest);
  if (it == parked_.end()) return;  // duplicate delivery; nothing waiting
  std::vector<ParkedAssign> parked = std::move(it->second);
  parked_.erase(it);
  for (auto& entry : parked) {
    if (!inflight_.contains(entry.assign.attempt)) continue;  // crashed since
    proto::AssignTasklet resolved = std::move(entry.assign);
    const auto& digest_body = std::get<proto::DigestBody>(resolved.body);
    resolved.body = proto::VmBody{m.program, digest_body.args};
    start_execution(resolved, now);
  }
}

void ProviderAgent::retry_parked_fetches(SimTime now, proto::Outbox& out) {
  std::vector<store::Digest> exhausted;
  for (auto& [digest, parked] : parked_) {
    bool give_up = false;
    for (auto& entry : parked) {
      if (entry.fetches >= config_.program_fetch_attempts) give_up = true;
    }
    if (give_up) {
      exhausted.push_back(digest);
      continue;
    }
    for (auto& entry : parked) ++entry.fetches;
    ++stats_.program_fetches;
    TASKLETS_COUNT("provider.program_fetches", 1);
    out.send(broker_, proto::FetchProgram{digest});
  }
  for (const store::Digest& digest : exhausted) {
    const auto it = parked_.find(digest);
    std::vector<ParkedAssign> parked = std::move(it->second);
    parked_.erase(it);
    for (auto& entry : parked) {
      inflight_.erase(entry.assign.attempt);
      reject_attempt(entry.assign, "program unavailable", now, out);
    }
  }
}

void ProviderAgent::start_execution(const proto::AssignTasklet& m, SimTime now) {
  ExecRequest request;
  request.attempt = m.attempt;
  request.tasklet = m.tasklet;
  request.body = m.body;
  request.max_fuel = m.max_fuel;
  request.resume_snapshot = m.resume_snapshot;
  request.trace = m.trace;
  const TaskletId tasklet = m.tasklet;
  const AttemptId attempt = m.attempt;
  // The "execute" span covers assignment acceptance to result send; ctx and
  // start ride in the completion (the agent keeps no per-attempt map).
  const TraceContext ctx = m.trace;
  const SimTime accepted_at = now;
  execution_.execute(
      std::move(request),
      [this, tasklet, attempt, ctx, accepted_at](proto::AttemptOutcome outcome,
                                                 SimTime done_now,
                                                 proto::Outbox& done_out) {
        inflight_.erase(attempt);
        switch (outcome.status) {
          case proto::AttemptStatus::kOk:
            ++stats_.completed;
            TASKLETS_COUNT("provider.completed", 1);
            break;
          case proto::AttemptStatus::kTrap:
            ++stats_.trapped;
            TASKLETS_COUNT("provider.trapped", 1);
            break;
          default:
            ++stats_.rejected;
            TASKLETS_COUNT("provider.rejected", 1);
            break;
        }
        if (config_.trace != nullptr) {
          Span span;
          span.trace_id = ctx.trace_id;
          span.parent_span = ctx.parent_span;
          span.name = "execute";
          span.node = id();
          span.tasklet = tasklet;
          span.start = accepted_at;
          span.end = done_now;
          span.args.emplace_back("status",
                                 std::string(to_string(outcome.status)));
          config_.trace->add(std::move(span));
        }
        proto::AttemptResult result;
        result.attempt = attempt;
        result.tasklet = tasklet;
        result.outcome = std::move(outcome);
        done_out.send(broker_, std::move(result));
      });
}

}  // namespace tasklets::provider

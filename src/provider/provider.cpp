#include "provider/provider.hpp"

#include "common/log.hpp"

namespace tasklets::provider {

ProviderAgent::ProviderAgent(NodeId id, NodeId broker, proto::Capability capability,
                             ExecutionService& execution, ProviderConfig config)
    : Actor(id),
      broker_(broker),
      capability_(std::move(capability)),
      execution_(execution),
      config_(config) {}

void ProviderAgent::on_start(SimTime, proto::Outbox& out) {
  out.send(broker_, proto::RegisterProvider{capability_});
  out.arm_timer(kHeartbeatTimer, config_.heartbeat_interval);
}

void ProviderAgent::leave(proto::Outbox& out) {
  online_ = false;
  proto::DeregisterProvider deregister;
  // In-flight work will be checkpointed by the runtime's execution service
  // and reported as suspended; tell the broker to wait for it.
  deregister.draining = !inflight_.empty();
  out.send(broker_, deregister);
}

void ProviderAgent::rejoin(SimTime, proto::Outbox& out) {
  online_ = true;
  out.send(broker_, proto::RegisterProvider{capability_});
}

void ProviderAgent::on_timer(std::uint64_t timer_id, SimTime, proto::Outbox& out) {
  if (timer_id != kHeartbeatTimer) return;
  if (online_) {
    proto::Heartbeat hb;
    hb.busy_slots = busy_slots();
    out.send(broker_, hb);
  }
  out.arm_timer(kHeartbeatTimer, config_.heartbeat_interval);
}

void ProviderAgent::on_message(const proto::Envelope& envelope, SimTime now,
                               proto::Outbox& out) {
  if (const auto* assign = std::get_if<proto::AssignTasklet>(&envelope.payload)) {
    handle_assign(*assign, now, out);
    return;
  }
  TASKLETS_LOG(kWarn, "provider")
      << id().to_string() << ": unexpected message "
      << proto::message_name(envelope.payload);
}

void ProviderAgent::handle_assign(const proto::AssignTasklet& m, SimTime,
                                  proto::Outbox& out) {
  ++stats_.assignments;
  if (!online_ || inflight_.size() >= capability_.slots) {
    ++stats_.rejected;
    proto::AttemptResult result;
    result.attempt = m.attempt;
    result.tasklet = m.tasklet;
    result.outcome.status = proto::AttemptStatus::kRejected;
    result.outcome.error = online_ ? "no free execution slot" : "provider offline";
    out.send(broker_, std::move(result));
    return;
  }
  inflight_.insert(m.attempt);

  ExecRequest request;
  request.attempt = m.attempt;
  request.tasklet = m.tasklet;
  request.body = m.body;
  request.max_fuel = m.max_fuel;
  const TaskletId tasklet = m.tasklet;
  const AttemptId attempt = m.attempt;
  execution_.execute(
      std::move(request),
      [this, tasklet, attempt](proto::AttemptOutcome outcome, SimTime,
                               proto::Outbox& done_out) {
        inflight_.erase(attempt);
        switch (outcome.status) {
          case proto::AttemptStatus::kOk:
            ++stats_.completed;
            break;
          case proto::AttemptStatus::kTrap:
            ++stats_.trapped;
            break;
          default:
            ++stats_.rejected;
            break;
        }
        proto::AttemptResult result;
        result.attempt = attempt;
        result.tasklet = tasklet;
        result.outcome = std::move(outcome);
        done_out.send(broker_, std::move(result));
      });
}

}  // namespace tasklets::provider

// Result memoization table keyed by (program digest, args digest).
//
// Tasklets are side-effect-free and the TVM has no nondeterministic
// opcodes, so equal (program, args) implies an equal result — a repeat
// submission can be answered from this table without a provider round trip.
// The broker populates it only from verified terminal results (the winning
// vote under QoC redundancy), and consults it only for tasklets whose QoC
// opts in via `memoize` (results are still application-visible state; the
// knob is the developer's assertion that staleness semantics don't apply).
//
// Entry-capped LRU; owned by the broker actor, not thread-safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/ids.hpp"
#include "store/digest.hpp"
#include "tvm/marshal.hpp"

namespace tasklets::store {

struct MemoKey {
  Digest program;
  Digest args;

  friend constexpr bool operator==(const MemoKey&, const MemoKey&) noexcept =
      default;
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& k) const noexcept {
    return std::hash<Digest>{}(k.program) ^
           (std::hash<Digest>{}(k.args) * 0x9E3779B97F4A7C15ULL);
  }
};

struct MemoEntry {
  tvm::HostArg result = std::int64_t{0};
  std::uint64_t fuel = 0;
  std::uint64_t instructions = 0;
  NodeId provider;  // who originally computed it (report provenance)
};

struct MemoStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
};

class MemoTable {
 public:
  explicit MemoTable(std::size_t max_entries = 4096)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  // nullptr on miss; refreshes recency on hit. The pointer stays valid
  // until the next insert (which may evict).
  [[nodiscard]] const MemoEntry* lookup(const MemoKey& key);

  // Last write wins for an existing key (results are equal by construction,
  // so this only refreshes provenance and recency).
  void insert(const MemoKey& key, MemoEntry entry);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const MemoStats& stats() const noexcept { return stats_; }

  // Read-only walk over the live entries (no recency effect). Used by the
  // ops plane to attribute cached results back to the provider that
  // computed them (the MEMO column of `taskletc top`).
  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& [key, slot] : entries_) fn(key, slot.entry);
  }

 private:
  struct Slot {
    MemoEntry entry;
    std::list<MemoKey>::iterator lru;
  };

  std::size_t max_entries_;
  MemoStats stats_;
  std::list<MemoKey> lru_;  // most-recent first
  std::unordered_map<MemoKey, Slot, MemoKeyHash> entries_;
};

}  // namespace tasklets::store

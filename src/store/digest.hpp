// Canonical 128-bit content digests for the content-addressed tasklet store.
//
// A Digest names immutable content: serialized TVM programs (`digest_bytes`
// over the bytecode container) and marshalled argument vectors
// (`digest_args` over the stable tvm::encode_args wire form). Because both
// inputs have a single canonical encoding, equal digests mean equal content
// for every honest party — which is what lets the broker dedup program
// bytes across submissions and memoize results by (program, args).
//
// The hash is a fixed, platform-stable function (explicit little-endian
// lane assembly, no seeds): the same bytes digest identically on every node
// of a deployment, today and in replayed traces. 128 bits keep accidental
// collisions out of reach at any realistic store size; this is an integrity
// check against corruption and a dedup key, not a defence against adaptive
// adversaries (providers are already untrusted at the *result* level and
// handled by QoC redundancy voting).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "tvm/marshal.hpp"

namespace tasklets::store {

struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  // 0/0 is reserved as "no digest" (synthetic bodies, legacy frames). The
  // hash function never produces it for any input.
  [[nodiscard]] constexpr bool valid() const noexcept {
    return (hi | lo) != 0;
  }
  friend constexpr bool operator==(const Digest&, const Digest&) noexcept =
      default;
  friend constexpr auto operator<=>(const Digest&, const Digest&) noexcept =
      default;

  // 32 lowercase hex chars (hi then lo); used in traces and logs.
  [[nodiscard]] std::string to_string() const;
};

// Digests raw content (serialized programs, snapshots, ...).
[[nodiscard]] Digest digest_bytes(std::span<const std::byte> data) noexcept;

// Digests an argument vector via its canonical marshalled form.
[[nodiscard]] Digest digest_args(const std::vector<tvm::HostArg>& args);

}  // namespace tasklets::store

template <>
struct std::hash<tasklets::store::Digest> {
  std::size_t operator()(const tasklets::store::Digest& d) const noexcept {
    // The digest is already uniformly mixed; fold the lanes.
    return static_cast<std::size_t>(d.hi ^ (d.lo * 0x9E3779B97F4A7C15ULL));
  }
};

// Content-addressed blob store with refcounts and a byte-budgeted LRU.
//
// Maps Digest -> immutable byte blobs (serialized programs). Used broker-side
// to intern program bytes across submissions, and consumer-side to pin the
// programs it may be asked to re-serve via FetchProgram. Two retention
// mechanisms compose:
//
//   * refcounts pin blobs that live work depends on (a pinned blob is never
//     evicted, even over budget — correctness beats the budget),
//   * unpinned blobs stay cached LRU within `budget_bytes` so future
//     submissions of the same program still dedup (warm capacity).
//
// Not thread-safe: owned by a single actor (broker / consumer), which is
// the repo-wide concurrency model for protocol state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/bytes.hpp"
#include "store/digest.hpp"

namespace tasklets::store {

struct BlobStoreStats {
  std::uint64_t puts = 0;        // insertions of new content
  std::uint64_t dedup_puts = 0;  // puts of already-present content
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

class BlobStore {
 public:
  explicit BlobStore(std::size_t budget_bytes = 64u << 20)
      : budget_bytes_(budget_bytes) {}

  // Interns `blob` under `digest` (precomputed by the caller, which always
  // has it anyway — avoids a re-hash here). Idempotent: re-putting existing
  // content only refreshes recency.
  void put(const Digest& digest, Bytes blob);

  // Content lookup; refreshes recency. nullptr on miss. The pointer stays
  // valid until the entry is evicted or the store is cleared.
  [[nodiscard]] const Bytes* get(const Digest& digest);

  // Presence probe: no recency refresh, no hit/miss accounting.
  [[nodiscard]] bool contains(const Digest& digest) const {
    return entries_.contains(digest);
  }

  // Pin / unpin. ref() on an absent digest is a no-op returning false —
  // callers pin right after put() or a contains() check.
  bool ref(const Digest& digest);
  void unref(const Digest& digest);

  [[nodiscard]] std::size_t entries() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_bytes_; }
  [[nodiscard]] const BlobStoreStats& stats() const noexcept { return stats_; }

  void clear();

 private:
  struct Entry {
    Bytes blob;
    std::uint32_t refcount = 0;
    std::list<Digest>::iterator lru;  // position in lru_
  };

  void touch(Entry& entry);
  // Evicts cold unpinned entries until the budget holds; `keep` (when set)
  // is never a victim, whatever its recency.
  void evict_over_budget(const Digest* keep = nullptr);

  std::size_t budget_bytes_;
  std::size_t bytes_ = 0;
  BlobStoreStats stats_;
  std::list<Digest> lru_;  // most-recent first
  std::unordered_map<Digest, Entry> entries_;
};

}  // namespace tasklets::store

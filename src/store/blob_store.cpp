#include "store/blob_store.hpp"

namespace tasklets::store {

void BlobStore::touch(Entry& entry) {
  lru_.splice(lru_.begin(), lru_, entry.lru);
}

void BlobStore::put(const Digest& digest, Bytes blob) {
  if (const auto it = entries_.find(digest); it != entries_.end()) {
    ++stats_.dedup_puts;
    touch(it->second);
    return;
  }
  ++stats_.puts;
  bytes_ += blob.size();
  lru_.push_front(digest);
  Entry entry;
  entry.blob = std::move(blob);
  entry.lru = lru_.begin();
  entries_.emplace(digest, std::move(entry));
  // The just-interned blob is exempt: callers pin right after put(), and
  // evicting it in between would make put-then-ref silently fail.
  evict_over_budget(&digest);
}

const Bytes* BlobStore::get(const Digest& digest) {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  touch(it->second);
  return &it->second.blob;
}

bool BlobStore::ref(const Digest& digest) {
  const auto it = entries_.find(digest);
  if (it == entries_.end()) return false;
  ++it->second.refcount;
  return true;
}

void BlobStore::unref(const Digest& digest) {
  const auto it = entries_.find(digest);
  if (it == entries_.end() || it->second.refcount == 0) return;
  --it->second.refcount;
  // A blob going unpinned over budget is reclaimed immediately.
  if (it->second.refcount == 0) evict_over_budget();
}

void BlobStore::evict_over_budget(const Digest* keep) {
  if (bytes_ <= budget_bytes_) return;
  // Walk from coldest to warmest, skipping pinned entries (and `keep`); stop
  // as soon as the budget holds again. If everything left is pinned, the
  // store runs over budget — pins are correctness, the budget is a target.
  auto it = lru_.end();
  while (bytes_ > budget_bytes_ && it != lru_.begin()) {
    --it;
    const auto entry_it = entries_.find(*it);
    if (entry_it->second.refcount > 0) continue;
    if (keep != nullptr && *it == *keep) continue;
    bytes_ -= entry_it->second.blob.size();
    ++stats_.evictions;
    it = lru_.erase(it);
    entries_.erase(entry_it);
  }
}

void BlobStore::clear() {
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace tasklets::store

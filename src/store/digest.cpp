#include "store/digest.hpp"

#include <array>

namespace tasklets::store {

namespace {

// 64-bit finalization mix (splitmix64 constants): full avalanche, so every
// input bit influences every output bit of its lane.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

// Assembles up to 8 bytes little-endian — byte order on the wire, not host
// order, so digests agree across platforms.
constexpr std::uint64_t load_le(const std::byte* p, std::size_t n) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string Digest::to_string() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t lane = i < 8 ? hi : lo;
    const int shift = 8 * (7 - (i % 8));
    s[static_cast<std::size_t>(2 * i)] = kHex[(lane >> (shift + 4)) & 0xF];
    s[static_cast<std::size_t>(2 * i + 1)] = kHex[(lane >> shift) & 0xF];
  }
  return s;
}

Digest digest_bytes(std::span<const std::byte> data) noexcept {
  // Two independently-seeded lanes absorbing 8-byte words with
  // multiply-rotate rounds, finalized with a cross-lane avalanche. The
  // length is folded in so prefixes of each other never collide.
  std::uint64_t a = 0x9AE16A3B2F90404FULL ^ data.size();
  std::uint64_t b = 0xC949D7C7509E6557ULL + data.size() * 0x9E3779B97F4A7C15ULL;
  std::size_t i = 0;
  for (; i + 8 <= data.size(); i += 8) {
    const std::uint64_t w = load_le(data.data() + i, 8);
    a = mix64(a ^ w) * 0xFF51AFD7ED558CCDULL;
    b = (b + w) * 0xC4CEB9FE1A85EC53ULL;
    b ^= b >> 33;
  }
  if (i < data.size()) {
    const std::uint64_t w = load_le(data.data() + i, data.size() - i);
    a = mix64(a ^ w) * 0xFF51AFD7ED558CCDULL;
    b = (b + w) * 0xC4CEB9FE1A85EC53ULL;
  }
  Digest d;
  d.hi = mix64(a + b);
  d.lo = mix64(b ^ a ^ 0x8E51AFD7ED558CCDULL);
  if (!d.valid()) d.lo = 1;  // keep 0/0 reserved for "no digest"
  return d;
}

Digest digest_args(const std::vector<tvm::HostArg>& args) {
  ByteWriter w;
  tvm::encode_args(w, args);
  return digest_bytes(w.buffer());
}

}  // namespace tasklets::store

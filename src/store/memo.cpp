#include "store/memo.hpp"

#include <utility>

namespace tasklets::store {

const MemoEntry* MemoTable::lookup(const MemoKey& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
  return &it->second.entry;
}

void MemoTable::insert(const MemoKey& key, MemoEntry entry) {
  if (const auto it = entries_.find(key); it != entries_.end()) {
    it->second.entry = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  ++stats_.inserts;
  lru_.push_front(key);
  Slot slot;
  slot.entry = std::move(entry);
  slot.lru = lru_.begin();
  entries_.emplace(key, std::move(slot));
  while (entries_.size() > max_entries_) {
    ++stats_.evictions;
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace tasklets::store
